"""Observability tests against a live service: /metrics scrapes,
healthz-as-registry-view consistency, drain semantics, and the SIGTERM
graceful-drain e2e with its bitwise-equal checkpoint guarantee."""

import http.client
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.protocol import Protocol
from repro.service import (
    IngestionServer,
    ServiceClient,
    ServiceError,
    SnapshotStore,
)
from repro.obs.lifecycle import DrainResult, DrainState

SEED = 77
N = 40


@pytest.fixture
def serve():
    running = []

    def _boot(*args, **kwargs):
        server = IngestionServer(*args, **kwargs).run_in_thread()
        running.append(server)
        return server

    yield _boot
    for server in running:
        server.stop()


def _users(n, prefix="u"):
    return [f"{prefix}{i}" for i in range(n)]


def _protocol():
    return Protocol.frequency(1.0, domain=10, oracle="oue")


def _scrape_raw(port):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=5)
    try:
        connection.request("GET", "/metrics")
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


class TestMetricsEndpoint:
    def test_scrape_exposes_core_series(self, serve):
        server = serve(_protocol(), shards=2)
        client = ServiceClient("127.0.0.1", server.port)
        client.submit(
            np.arange(N) % 10, users=_users(N), rng=SEED
        )
        text = client.server_metrics_text()
        assert "# TYPE repro_batches_accepted_total counter" in text
        fp = server.registry.default.fingerprint
        assert (
            f'repro_batches_accepted_total{{campaign="{fp}"}} 1' in text
        )
        assert 'repro_ingest_batches_total{wire_version="2"} 1' in text
        # Pre-seeded zero for the legacy wire version — explicit, not absent.
        assert 'repro_ingest_batches_total{wire_version="1"} 0' in text
        assert "repro_uptime_seconds" in text
        assert "repro_draining 0" in text
        assert 'repro_shard_queue_depth{shard="0"} 0' in text
        assert 'repro_shard_absorbed_batches{shard="1"}' in text
        # Instrument-gated request-path series are on by default.
        assert "repro_request_seconds_bucket" in text
        assert 'repro_http_responses_total{endpoint="/report",status="200"} 1' in text
        assert "repro_user_budget_spent_epsilon_count" in text

    def test_content_type_is_prometheus_v0_0_4(self, serve):
        server = serve(_protocol())
        status, headers, body = _scrape_raw(server.port)
        assert status == 200
        assert headers["Content-Type"] == (
            "text/plain; version=0.0.4; charset=utf-8"
        )
        assert body.decode("utf-8").endswith("\n")

    def test_unknown_paths_collapse_to_other_label(self, serve):
        server = serve(_protocol())
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=5
        )
        try:
            connection.request("GET", "/no/such/page")
            connection.getresponse().read()
        finally:
            connection.close()
        text = ServiceClient("127.0.0.1", server.port).server_metrics_text()
        assert 'endpoint="other"' in text
        assert "/no/such/page" not in text

    def test_healthz_is_a_view_over_the_registry(self, serve):
        server = serve(_protocol())
        client = ServiceClient("127.0.0.1", server.port)
        client.submit(np.arange(N) % 10, users=_users(N), rng=SEED)
        client.submit(
            np.arange(N) % 10, users=_users(N, prefix="v"), rng=SEED + 1
        )
        health = client.healthz()
        registry = server.metrics.registry
        assert health["status"] == "ok"
        assert health["batches_accepted"] == 2
        # The counter is labelled per campaign now; healthz reports the
        # sum over campaigns.
        assert health["batches_accepted"] == registry.sample(
            "repro_batches_accepted_total",
            {"campaign": server.registry.default.fingerprint},
        )
        assert health["duplicates"] == registry.sample(
            "repro_duplicate_batches_total"
        )
        assert health["wire_versions"]["2"] == registry.sample(
            "repro_ingest_batches_total", {"wire_version": "2"}
        )
        assert health["users_charged"] == 2 * N

    def test_uninstrumented_server_keeps_state_metrics(self, serve):
        server = serve(_protocol(), instrument=False)
        client = ServiceClient("127.0.0.1", server.port)
        client.submit(np.arange(N) % 10, users=_users(N), rng=SEED)
        text = client.server_metrics_text()
        # Durable state counters survive instrument=False...
        fp = server.registry.default.fingerprint
        assert (
            f'repro_batches_accepted_total{{campaign="{fp}"}} 1' in text
        )
        assert 'repro_ingest_batches_total{wire_version="2"} 1' in text
        # ...but request-path observation is nulled out.
        assert "repro_request_seconds_bucket" not in text
        assert "repro_ingest_reports_total" not in text
        assert client.healthz()["batches_accepted"] == 1

    def test_duplicate_batches_counted(self, serve):
        server = serve(_protocol())
        client = ServiceClient("127.0.0.1", server.port)
        values = np.arange(N) % 10
        client.submit(
            values, users=_users(N), rng=SEED, idempotency_key="same-batch"
        )
        client.submit(
            values, users=_users(N), rng=SEED, idempotency_key="same-batch"
        )
        assert server.metrics.registry.sample(
            "repro_duplicate_batches_total"
        ) == 1


class TestClientMetrics:
    def test_client_tracks_its_own_requests(self, serve):
        server = serve(_protocol())
        client = ServiceClient("127.0.0.1", server.port)
        client.submit(np.arange(N) % 10, users=_users(N), rng=SEED)
        client.healthz()
        text = client.metrics_text()
        assert 'repro_client_responses_total{endpoint="/report",status="200"} 1' in text
        assert 'repro_client_responses_total{endpoint="/healthz",status="200"} 1' in text
        assert "repro_client_request_seconds_bucket" in text

    def test_connection_retries_counted(self):
        client = ServiceClient(
            "127.0.0.1", 1, retries=2, retry_delay=0.0, retry_max_delay=0.0
        )
        with pytest.raises(ConnectionError):
            client.healthz()
        assert (
            'repro_client_retries_total{reason="connection_error"} 2'
            in client.metrics_text()
        )


class TestDrainSemantics:
    def test_draining_server_refuses_new_batches_but_serves_reads(
        self, serve
    ):
        server = serve(_protocol())
        client = ServiceClient("127.0.0.1", server.port, retries=0)
        client.submit(np.arange(N) % 10, users=_users(N), rng=SEED)
        server.begin_drain()
        assert server.drain_state is DrainState.DRAINING
        with pytest.raises(ServiceError) as excinfo:
            client.submit(
                np.arange(N) % 10, users=_users(N, prefix="v"), rng=SEED
            )
        assert excinfo.value.status == 503
        assert excinfo.value.payload["error"] == "draining"
        # Reads still work: scrape, health, estimate.
        assert client.healthz()["status"] == "draining"
        assert "repro_draining 1" in client.server_metrics_text()
        assert client.estimate() is not None

    def test_drain_flushes_and_checkpoints(self, serve, tmp_path):
        server = serve(
            _protocol(),
            store=SnapshotStore(tmp_path),
            checkpoint_every=1000,
            shards=2,
        )
        client = ServiceClient("127.0.0.1", server.port)
        for i in range(3):
            client.submit(
                np.arange(N) % 10,
                users=_users(N, prefix=f"b{i}-"),
                rng=SEED + i,
            )
        result = server.drain()
        assert isinstance(result, DrainResult)
        assert result.checkpoint_seq == 3
        assert result.shards_flushed == 2
        assert result.batches_accepted == 3
        assert server.drain_state is DrainState.DRAINED
        assert SnapshotStore(tmp_path).latest_sequence() == 3
        assert client.healthz()["status"] == "drained"

    def test_drain_without_store_reports_no_checkpoint(self, serve):
        server = serve(_protocol())
        result = server.drain()
        assert result.checkpoint_seq is None
        assert result.shards_flushed == 0

    def test_drain_is_idempotent(self, serve, tmp_path):
        server = serve(
            _protocol(), store=SnapshotStore(tmp_path), checkpoint_every=1000
        )
        client = ServiceClient("127.0.0.1", server.port)
        client.submit(np.arange(N) % 10, users=_users(N), rng=SEED)
        first = server.drain()
        second = server.drain()
        assert first.checkpoint_seq == second.checkpoint_seq == 1
        assert second.batches_accepted == 1


def _boot_cli(tmp_path, tag, extra_args):
    spec_path = tmp_path / "spec.json"
    if not spec_path.exists():
        spec_path.write_text(
            json.dumps(Protocol.frequency(1.0, domain=6).spec.to_dict())
        )
    env = dict(os.environ)
    root = Path(__file__).resolve().parent.parent
    env["PYTHONPATH"] = (
        f"{root / 'src'}{os.pathsep}{env.get('PYTHONPATH', '')}"
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro.service",
            "--spec", str(spec_path),
            "--port", "0",
            "--snapshot-dir", str(tmp_path / tag),
            "--shards", "2",
            "--log-format", "json",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    banner = proc.stdout.readline()
    assert "repro.service:" in banner, banner
    port = int(banner.split("http://127.0.0.1:")[1].split()[0])
    return proc, port


def _submit_twin_batches(port):
    """Three deterministic batches — identical across twin runs."""
    client = ServiceClient("127.0.0.1", port, retries=5)
    for i in range(3):
        client.submit(
            np.array([1, 2, 3, 1, 5, 0]),
            users=_users(6, prefix=f"b{i}-"),
            rng=i,
        )


def _snapshot_files(directory, seq):
    """(relative-name, bytes) for every seq-`seq` file, root + namespaces."""
    directory = Path(directory)
    name = f"snapshot-{seq:010d}.json"
    out = {name: (directory / name).read_bytes()}
    for child in sorted(p for p in directory.iterdir() if p.is_dir()):
        out[f"{child.name}/{name}"] = (child / name).read_bytes()
    return out


class TestSigtermDrain:
    def test_sigterm_drains_flushes_and_exits_zero(self, tmp_path):
        proc, port = _boot_cli(
            tmp_path, "drained", ["--checkpoint-every", "1000"]
        )
        try:
            _submit_twin_batches(port)
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=15)
        except BaseException:
            proc.kill()
            raise
        assert proc.returncode == 0, out + err
        assert "draining (SIGTERM)" in out
        assert "final checkpoint 3" in out
        assert "repro.service: stopped" in out
        # Structured stderr: every line is one JSON object, and the
        # drain lifecycle events are present.
        events = [json.loads(line)["event"] for line in err.splitlines()]
        assert "drain started" in events
        assert "checkpoint written" in events
        assert "drain complete" in events
        assert SnapshotStore(tmp_path / "drained").latest_sequence() == 3

    def test_drain_checkpoint_bitwise_equals_uninterrupted_twin(
        self, tmp_path
    ):
        # Twin A: never checkpoints on its own (interval 1000); the only
        # snapshot it writes is the final one from the SIGTERM drain.
        proc_a, port_a = _boot_cli(
            tmp_path, "a", ["--checkpoint-every", "1000"]
        )
        try:
            _submit_twin_batches(port_a)
            proc_a.send_signal(signal.SIGTERM)
            out_a, err_a = proc_a.communicate(timeout=15)
        except BaseException:
            proc_a.kill()
            raise
        assert proc_a.returncode == 0, out_a + err_a

        # Twin B: checkpoints after every batch — snapshot seq 3 is
        # written by the ordinary uninterrupted request path.  The
        # process is then killed abruptly so no shutdown code runs.
        proc_b, port_b = _boot_cli(
            tmp_path, "b", ["--checkpoint-every", "1"]
        )
        try:
            _submit_twin_batches(port_b)
            twin = _snapshot_files(tmp_path / "b", 3)
        finally:
            proc_b.kill()
            proc_b.communicate(timeout=15)

        drained = _snapshot_files(tmp_path / "a", 3)
        assert set(drained) == set(twin)
        for name in drained:
            assert drained[name] == twin[name], (
                f"snapshot file {name} differs between drained and "
                "uninterrupted runs"
            )

    def test_sigterm_before_any_traffic_exits_zero(self, tmp_path):
        proc, port = _boot_cli(
            tmp_path, "idle", ["--checkpoint-every", "1000"]
        )
        try:
            # Server is up (banner parsed); drain immediately.
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=15)
        except BaseException:
            proc.kill()
            raise
        assert proc.returncode == 0, out + err
        assert "draining (SIGTERM)" in out
