"""End-to-end integration tests across subsystem boundaries.

Each test runs a full pipeline the way a downstream user would: generate
data -> collect under LDP -> aggregate -> compare against ground truth /
baselines, asserting the paper's qualitative claims.
"""

import numpy as np
import pytest

from repro.data import (
    make_br_like,
    make_mx_like,
    truncated_gaussian_matrix,
)
from repro.data.census import INCOME
from repro.multidim import (
    MixedMultidimCollector,
    MultidimNumericCollector,
    SplitCompositionBaseline,
)
from repro.sgd import LinearRegression, LogisticRegression, SupportVectorMachine
from repro.utils.rng import spawn_rngs
from repro.utils.stats import empirical_mse


class TestEstimationPipeline:
    def test_proposed_beats_all_baselines_on_br(self):
        """Fig. 4's headline on a laptop-scale BR-like dataset."""
        dataset = make_br_like(30_000, rng=1)
        truth_means = dataset.true_numeric_means()
        truth_freqs = dataset.true_categorical_frequencies()
        eps, repeats = 1.0, 4

        def avg_mse(factory):
            mean_scores, freq_scores = [], []
            for child in spawn_rngs(11, repeats):
                est = factory().collect(dataset, child)
                mean_scores.append(est.mean_mse(truth_means))
                freq_scores.append(est.frequency_mse(truth_freqs))
            return float(np.mean(mean_scores)), float(np.mean(freq_scores))

        ours_mean, ours_freq = avg_mse(
            lambda: MixedMultidimCollector(dataset.schema, eps, "hm")
        )
        for method in ("laplace", "duchi"):
            base_mean, base_freq = avg_mse(
                lambda m=method: SplitCompositionBaseline(
                    dataset.schema, eps, m
                )
            )
            assert ours_mean < base_mean
            assert ours_freq < base_freq

    def test_pm_advantage_grows_with_small_inputs(self):
        """Fig. 5's mu = 0 vs mu = 1 effect: PM's MSE advantage over
        Duchi is larger when inputs cluster near zero."""
        n, d, eps, repeats = 20_000, 16, 2.0, 4

        def avg_ratio(mu):
            small = truncated_gaussian_matrix(n, d, mu, rng=3)
            truth = small.mean(axis=0)
            pm_scores, du_scores = [], []
            for child in spawn_rngs(4, repeats):
                pm_est = MultidimNumericCollector(eps, d, "pm").collect(
                    small, child
                )
                pm_scores.append(empirical_mse(pm_est, truth))
                from repro.core import DuchiMultidimMechanism

                du_est = (
                    DuchiMultidimMechanism(eps, d)
                    .privatize(small, child)
                    .mean(axis=0)
                )
                du_scores.append(empirical_mse(du_est, truth))
            return float(np.mean(pm_scores) / np.mean(du_scores))

        assert avg_ratio(0.0) < 1.0  # PM wins on small-magnitude data

    def test_error_scales_inversely_with_n(self):
        """Lemma 5: quadrupling n roughly quarters the MSE."""
        d, eps = 8, 1.0
        matrix_small = truncated_gaussian_matrix(5_000, d, 0.2, rng=5)
        matrix_large = truncated_gaussian_matrix(80_000, d, 0.2, rng=5)
        collector = MultidimNumericCollector(eps, d, "hm")

        def avg_mse(matrix):
            truth = matrix.mean(axis=0)
            return float(
                np.mean(
                    [
                        empirical_mse(collector.collect(matrix, c), truth)
                        for c in spawn_rngs(9, 5)
                    ]
                )
            )

        ratio = avg_mse(matrix_small) / avg_mse(matrix_large)
        assert 4.0 < ratio < 64.0  # 16x users -> ~16x smaller MSE


class TestERMPipeline:
    @pytest.fixture(scope="class")
    def mx_task(self):
        dataset = make_mx_like(25_000, rng=2)
        x, y = dataset.to_erm_features(INCOME)
        y_bin = np.where(y > y.mean(), 1.0, -1.0)
        return x, y, y_bin

    def test_linear_regression_eps_trend(self, mx_task):
        x, y, _ = mx_task
        mse_tight = LinearRegression(epsilon=0.5).fit(x, y, 1).score(x, y)
        mse_loose = LinearRegression(epsilon=4.0).fit(x, y, 1).score(x, y)
        mse_np = LinearRegression().fit(x, y, 1).score(x, y)
        assert mse_np <= mse_loose <= mse_tight

    def test_classifiers_beat_chance_at_eps4(self, mx_task):
        x, _, y_bin = mx_task
        majority = min(np.mean(y_bin == 1.0), np.mean(y_bin == -1.0))
        for cls in (LogisticRegression, SupportVectorMachine):
            score = cls(epsilon=4.0, method="hm").fit(x, y_bin, 1).score(
                x, y_bin
            )
            assert score <= majority + 0.05

    def test_laplace_is_worst_gradient_method(self, mx_task):
        """Figs. 9-11: per-coordinate Laplace at eps/d trails Algorithm 4."""
        x, y, _ = mx_task
        hm = LinearRegression(epsilon=1.0, method="hm").fit(x, y, 3).score(x, y)
        laplace = LinearRegression(epsilon=1.0, method="laplace").fit(
            x, y, 3
        ).score(x, y)
        assert hm < laplace


class TestPublicApi:
    def test_star_imports_work(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet(self):
        """The README quickstart must actually run."""
        import numpy as np

        from repro import HybridMechanism

        values = np.random.default_rng(0).uniform(-1, 1, 10_000)
        hm = HybridMechanism(epsilon=1.0)
        noisy = hm.privatize(values, rng=0)
        estimate = hm.estimate_mean(noisy)
        assert abs(estimate - values.mean()) < 0.1
