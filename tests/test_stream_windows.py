"""Unit tests for repro.stream.windows — panes, windows, decay."""

import numpy as np
import pytest

from repro.protocol import Protocol
from repro.service import wire
from repro.stream import (
    DecayedWindowedAccumulator,
    WindowConfig,
    WindowedAccumulator,
    parse_duration,
)


def frequency_protocol(domain=8, oracle="grr"):
    return Protocol.frequency(epsilon=1.0, domain=domain, oracle=oracle)


def round_batches(protocol, rounds, per_round=40, domain=8, seed=0):
    """One encoded batch per round, deterministically seeded."""
    batches = []
    for r in range(rounds):
        rng = np.random.default_rng(seed + r)
        values = rng.integers(0, domain, size=per_round)
        batches.append(protocol.client().encode_batch(
            values, np.random.default_rng(1000 + seed + r)
        ))
    return batches


class TestParseDuration:
    def test_units(self):
        assert parse_duration("90s") == 90.0
        assert parse_duration("5m") == 300.0
        assert parse_duration("2h") == 7200.0
        assert parse_duration("1d") == 86400.0

    def test_bare_number_is_seconds(self):
        assert parse_duration("45") == 45.0

    def test_rejects_garbage(self):
        for bad in ("", "5x", "s", "-3s", "1h30m"):
            with pytest.raises(ValueError):
                parse_duration(bad)


class TestWindowConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WindowConfig(panes=0)
        with pytest.raises(ValueError):
            WindowConfig(panes=3, pane_seconds=0)
        with pytest.raises(ValueError):
            WindowConfig(panes=3, decay=1.5)

    def test_round_trip(self):
        cfg = WindowConfig(panes=6, pane_seconds=30.0, decay=0.8)
        assert WindowConfig.from_dict(cfg.to_dict()) == cfg
        plain = WindowConfig(panes=2)
        assert WindowConfig.from_dict(plain.to_dict()) == plain

    def test_resolve_panes(self):
        cfg = WindowConfig(panes=10, pane_seconds=30.0)
        assert cfg.resolve_panes(None) == 10
        assert cfg.resolve_panes("") == 10
        assert cfg.resolve_panes("3") == 3
        assert cfg.resolve_panes("90s") == 3
        assert cfg.resolve_panes("100s") == 4  # ceil
        assert cfg.resolve_panes("1h") == 10  # clamped to ring
        with pytest.raises(ValueError):
            cfg.resolve_panes("0")

    def test_duration_needs_pane_seconds(self):
        cfg = WindowConfig(panes=4)
        assert cfg.resolve_panes("2") == 2
        with pytest.raises(ValueError):
            cfg.resolve_panes("90s")

    def test_build_picks_variant(self):
        proto = frequency_protocol()
        assert isinstance(
            WindowConfig(panes=2).build(proto.server), WindowedAccumulator
        )
        decayed = WindowConfig(panes=2, decay=0.5).build(proto.server)
        assert isinstance(decayed, DecayedWindowedAccumulator)
        assert decayed.decay == 0.5


class TestWindowedAccumulator:
    def test_window_estimate_bitwise_equals_fresh(self):
        proto = frequency_protocol()
        batches = round_batches(proto, rounds=4)
        acc = WindowConfig(panes=4).build(proto.server)
        for r, batch in enumerate(batches):
            acc.absorb_round(r, batch)

        for n in (1, 2, 4):
            fresh = proto.server()
            for batch in batches[-n:]:
                fresh.absorb(batch)
            assert np.array_equal(acc.window_estimate(n), fresh.estimate())
            assert acc.window_count(n) == fresh.count

    def test_all_time_estimate_ignores_windows(self):
        proto = frequency_protocol()
        batches = round_batches(proto, rounds=6)
        acc = WindowConfig(panes=2).build(proto.server)
        fresh = proto.server()
        for r, batch in enumerate(batches):
            acc.absorb_round(r, batch)
            fresh.absorb(batch)
        # four panes evicted into the expired tail; all-time unchanged
        assert acc.live_rounds() == [4, 5]
        assert np.array_equal(acc.estimate(), fresh.estimate())
        assert acc.count == fresh.count

    def test_roundless_absorb_lands_in_current_round(self):
        proto = frequency_protocol()
        b0, b1 = round_batches(proto, rounds=2)
        acc = WindowConfig(panes=3).build(proto.server)
        acc.absorb(b0)  # no data yet -> round 0
        assert acc.live_rounds() == [0]
        acc.absorb_round(2, b1)
        acc.absorb(b0)  # lands in round 2, the latest
        assert acc.pane_counts()[2] == 2 * len(np.asarray(b1))

    def test_late_arrival_folds_into_expired_tail(self):
        proto = frequency_protocol()
        batches = round_batches(proto, rounds=5)
        acc = WindowConfig(panes=2).build(proto.server)
        for r in (3, 4):
            acc.absorb_round(r, batches[r])
        windowed_before = acc.window_estimate()
        acc.absorb_round(0, batches[0])  # older than the ring floor
        # the window is unchanged, the all-time estimate includes it
        assert np.array_equal(acc.window_estimate(), windowed_before)
        fresh = proto.server()
        for r in (0, 3, 4):
            fresh.absorb(batches[r])
        assert acc.count == fresh.count

    def test_merge_aligns_rounds(self):
        proto = frequency_protocol()
        batches = round_batches(proto, rounds=4)
        left = WindowConfig(panes=4).build(proto.server)
        right = WindowConfig(panes=4).build(proto.server)
        for r in (0, 2):
            left.absorb_round(r, batches[r])
        for r in (1, 2, 3):
            right.absorb_round(r, batches[r])
        left.merge(right)
        single = WindowConfig(panes=4).build(proto.server)
        for r in (0, 1, 3):
            single.absorb_round(r, batches[r])
        single.absorb_round(2, batches[2])
        single.absorb_round(2, batches[2])
        assert left.pane_counts() == single.pane_counts()
        assert np.array_equal(left.window_estimate(2), single.window_estimate(2))

    def test_merge_rejects_mismatched_rings(self):
        proto = frequency_protocol()
        a = WindowConfig(panes=2).build(proto.server)
        b = WindowConfig(panes=3).build(proto.server)
        with pytest.raises(ValueError):
            a.merge(b)
        with pytest.raises(ValueError):
            a.merge(proto.server())

    def test_snapshot_round_trip_bitwise(self):
        proto = frequency_protocol()
        batches = round_batches(proto, rounds=5)
        acc = WindowConfig(panes=3).build(proto.server)
        for r, batch in enumerate(batches):
            acc.absorb_round(r, batch)
        state = acc.state_dict()
        clone = WindowConfig(panes=3).build(proto.server).load_state(state)
        assert wire.encode_accumulator_state(
            clone
        ) == wire.encode_accumulator_state(acc)
        assert clone.live_rounds() == acc.live_rounds()
        assert np.array_equal(clone.estimate(), acc.estimate())
        assert np.array_equal(clone.window_estimate(2), acc.window_estimate(2))
        # resumed accumulator keeps absorbing identically
        extra = round_batches(proto, rounds=1, seed=77)[0]
        acc.absorb_round(5, extra)
        clone.absorb_round(5, extra)
        assert wire.encode_accumulator_state(
            clone
        ) == wire.encode_accumulator_state(acc)

    def test_empty_window_raises(self):
        proto = frequency_protocol()
        acc = WindowConfig(panes=2).build(proto.server)
        with pytest.raises(ValueError):
            acc.window_estimate()
        with pytest.raises(ValueError):
            acc.estimate()

    def test_mean_protocol_windows(self):
        proto = Protocol.numeric_mean(epsilon=1.0, mechanism="pm")
        rng = np.random.default_rng(3)
        acc = WindowConfig(panes=2).build(proto.server)
        b0 = proto.client().encode_batch(
            rng.uniform(-1, 1, 30), np.random.default_rng(10)
        )
        b1 = proto.client().encode_batch(
            rng.uniform(-1, 1, 30), np.random.default_rng(11)
        )
        acc.absorb_round(0, b0).absorb_round(1, b1)
        fresh = proto.server().absorb(b1)
        assert acc.window_estimate(1) == fresh.estimate()

    def test_validate_delegates_to_template(self):
        proto = frequency_protocol(domain=4)
        acc = WindowConfig(panes=2).build(proto.server)
        with pytest.raises(ValueError):
            acc.validate_reports(np.array([0, 99]))

    def test_rejects_negative_round(self):
        proto = frequency_protocol()
        acc = WindowConfig(panes=2).build(proto.server)
        with pytest.raises(ValueError):
            acc.absorb_round(-1, np.array([0, 1]))


class TestDecayedWindowedAccumulator:
    def test_decay_one_matches_window_merge(self):
        proto = Protocol.numeric_mean(epsilon=1.0, mechanism="pm")
        rng = np.random.default_rng(5)
        acc = WindowConfig(panes=3, decay=1.0).build(proto.server)
        for r in range(3):
            acc.absorb_round(r, proto.client().encode_batch(
                rng.uniform(-1, 1, 25), np.random.default_rng(20 + r)
            ))
        # decay 1.0 weights panes by count only == plain window merge
        assert acc.estimate() == pytest.approx(acc.window_estimate(), abs=1e-12)

    def test_decay_weights_recent_panes(self):
        proto = Protocol.numeric_mean(epsilon=4.0, mechanism="pm")
        rng = np.random.default_rng(6)
        acc = WindowConfig(panes=2, decay=0.01).build(proto.server)
        low = proto.client().encode_batch(
            np.full(400, -0.8), np.random.default_rng(30)
        )
        high = proto.client().encode_batch(
            np.full(400, 0.8), np.random.default_rng(31)
        )
        acc.absorb_round(0, low).absorb_round(1, high)
        # near-total decay: the estimate ~ the latest pane alone
        latest = proto.server().absorb(high).estimate()
        assert acc.estimate() == pytest.approx(latest, abs=0.05)
        assert acc.all_time_estimate() == pytest.approx(
            proto.server().absorb(low).absorb(high).estimate(), abs=1e-12
        )

    def test_frequency_decay_is_convex_combination(self):
        proto = frequency_protocol()
        batches = round_batches(proto, rounds=2)
        acc = WindowConfig(panes=2, decay=0.5).build(proto.server)
        acc.absorb_round(0, batches[0]).absorb_round(1, batches[1])
        e0 = proto.server().absorb(batches[0]).estimate()
        e1 = proto.server().absorb(batches[1]).estimate()
        n = len(np.asarray(batches[0]))
        w0, w1 = 0.5 * n, 1.0 * n
        expected = (w0 * e0 + w1 * e1) / (w0 + w1)
        assert np.allclose(acc.estimate(), expected, atol=1e-12)

    def test_histogram_estimate_rejected(self):
        proto = Protocol.histogram(epsilon=1.0, bins=4, oracle="grr")
        acc = WindowConfig(panes=2, decay=0.9).build(proto.server)
        rng = np.random.default_rng(8)
        acc.absorb_round(0, proto.client().encode_batch(
            rng.uniform(-1, 1, 20), np.random.default_rng(40)
        ))
        with pytest.raises(TypeError):
            acc.estimate()
        # the undecayed paths still work
        acc.all_time_estimate()
        acc.window_estimate()

    def test_snapshot_interchanges_with_plain(self):
        proto = frequency_protocol()
        batches = round_batches(proto, rounds=3)
        decayed = WindowConfig(panes=3, decay=0.7).build(proto.server)
        for r, batch in enumerate(batches):
            decayed.absorb_round(r, batch)
        plain = WindowConfig(panes=3).build(proto.server)
        plain.load_state(decayed.state_dict())
        assert wire.encode_accumulator_state(
            plain
        ) == wire.encode_accumulator_state(decayed)
