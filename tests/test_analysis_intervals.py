"""Tests for confidence intervals (repro.analysis.intervals)."""

import math

import numpy as np
import pytest

from repro.analysis.intervals import (
    ConfidenceInterval,
    collector_mean_intervals,
    frequency_intervals,
    mean_interval,
    z_quantile,
)
from repro.core import HybridMechanism
from repro.frequency import OptimizedUnaryEncoding
from repro.multidim import MultidimNumericCollector
from repro.utils.rng import spawn_rngs


class TestZQuantile:
    def test_table_values(self):
        assert z_quantile(0.05) == pytest.approx(1.96, abs=1e-3)
        assert z_quantile(0.01) == pytest.approx(2.5758, abs=1e-3)

    def test_approximation_matches_table_neighborhood(self):
        # Off-table betas go through the rational approximation
        # (reference values from scipy.stats.norm.ppf).
        assert z_quantile(0.049) == pytest.approx(1.96859, abs=1e-4)
        assert z_quantile(0.32) == pytest.approx(0.99446, abs=1e-4)
        assert z_quantile(0.0015625) == pytest.approx(3.16282, abs=1e-4)

    def test_monotone_in_beta(self):
        assert z_quantile(0.01) > z_quantile(0.05) > z_quantile(0.2)

    def test_extreme_beta(self):
        # Deep-tail branch of the approximation.
        assert z_quantile(1e-6) == pytest.approx(4.8916, abs=0.01)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1])
    def test_invalid_beta(self, bad):
        with pytest.raises(ValueError):
            z_quantile(bad)


class TestConfidenceInterval:
    def test_bounds(self):
        ci = ConfidenceInterval(0.5, 0.1, 0.05, "clt")
        assert ci.low == pytest.approx(0.4)
        assert ci.high == pytest.approx(0.6)

    def test_contains(self):
        ci = ConfidenceInterval(0.0, 0.2, 0.05, "clt")
        assert ci.contains(0.15)
        assert not ci.contains(0.25)


class TestMeanInterval:
    def test_clt_tighter_than_concentration(self):
        hm = HybridMechanism(1.0)
        clt = mean_interval(hm, 0.0, 10_000, method="clt")
        conc = mean_interval(hm, 0.0, 10_000, method="concentration")
        assert clt.radius < conc.radius

    def test_radius_shrinks_with_n(self):
        hm = HybridMechanism(1.0)
        assert (
            mean_interval(hm, 0.0, 40_000).radius
            == pytest.approx(mean_interval(hm, 0.0, 10_000).radius / 2.0)
        )

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            mean_interval(HybridMechanism(1.0), 0.0, 100, method="bayes")

    def test_bad_n(self):
        with pytest.raises(ValueError):
            mean_interval(HybridMechanism(1.0), 0.0, 0)

    def test_empirical_coverage(self):
        """95% CLT intervals cover the truth in ~>=90% of trials."""
        hm = HybridMechanism(1.0)
        truth = 0.3
        n, trials = 3_000, 60
        hits = 0
        for child in spawn_rngs(3, trials):
            estimate = hm.estimate_mean(
                hm.privatize(np.full(n, truth), child)
            )
            if mean_interval(hm, estimate, n).contains(truth):
                hits += 1
        assert hits >= int(0.88 * trials)


class TestFrequencyIntervals:
    def test_count_and_shape(self):
        oracle = OptimizedUnaryEncoding(1.0, 5)
        cis = frequency_intervals(oracle, [0.2] * 5, 1_000)
        assert len(cis) == 5
        assert all(ci.radius > 0 for ci in cis)

    def test_bonferroni_widens(self):
        small = OptimizedUnaryEncoding(1.0, 2)
        large = OptimizedUnaryEncoding(1.0, 32)
        ci_small = frequency_intervals(small, [0.5, 0.5], 1_000)[0]
        ci_large = frequency_intervals(large, [1 / 32.0] * 32, 1_000)[0]
        # Same per-cell variance scale differences aside, the k=32
        # correction uses beta/32 -> wider z.
        assert ci_large.radius > 0  # structural sanity
        assert ci_small.beta == ci_large.beta

    def test_empirical_coverage(self):
        oracle = OptimizedUnaryEncoding(2.0, 4)
        values = np.zeros(4_000, dtype=np.int64)
        truth = np.array([1.0, 0.0, 0.0, 0.0])
        hits = 0
        trials = 40
        for child in spawn_rngs(5, trials):
            est = oracle.estimate_frequencies(oracle.privatize(values, child))
            cis = frequency_intervals(oracle, est, 4_000)
            if all(ci.contains(t) for ci, t in zip(cis, truth)):
                hits += 1
        assert hits >= int(0.85 * trials)

    def test_bad_n(self):
        with pytest.raises(ValueError):
            frequency_intervals(OptimizedUnaryEncoding(1.0, 3), [0.3] * 3, 0)


class TestCollectorIntervals:
    def test_keys_preserved(self):
        collector = MultidimNumericCollector(2.0, 4, "hm")
        cis = collector_mean_intervals(
            collector, {"a": 0.1, "b": -0.2}, 10_000
        )
        assert set(cis) == {"a", "b"}

    def test_empty_estimates_rejected(self):
        collector = MultidimNumericCollector(2.0, 4, "hm")
        with pytest.raises(ValueError):
            collector_mean_intervals(collector, {}, 100)

    def test_empirical_coverage(self):
        d, n, trials = 4, 6_000, 30
        collector = MultidimNumericCollector(2.0, d, "hm")
        truth = np.array([0.1, -0.2, 0.4, 0.0])
        matrix = np.tile(truth, (n, 1))
        hits = 0
        for child in spawn_rngs(8, trials):
            estimates = collector.collect(matrix, child)
            named = {f"a{j}": estimates[j] for j in range(d)}
            cis = collector_mean_intervals(collector, named, n)
            if all(cis[f"a{j}"].contains(truth[j]) for j in range(d)):
                hits += 1
        assert hits >= int(0.85 * trials)
