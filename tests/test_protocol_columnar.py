"""Columnar report form: round-trips and absorb_columns bitwise parity.

Every report container must (a) survive ``to_columns``/``from_columns``
bitwise, (b) produce the bitwise-identical accumulator state whether
absorbed as an object or as its :class:`ColumnBlock` twin, and (c)
survive the v2 binary framing (:func:`wire.pack_columns` /
:func:`wire.unpack_columns`) untouched.
"""

import numpy as np
import pytest

from repro.data.census import make_br_like
from repro.frequency.olh import OLHReports
from repro.multidim.collector import MixedReports
from repro.protocol import Protocol, SampledNumericReports
from repro.protocol.reports import ColumnBlock
from repro.service import wire

N = 300


def _protocol_cases():
    dataset = make_br_like(N, rng=np.random.default_rng(5))
    return {
        "mean": (Protocol.numeric_mean(1.0, "hm"), None),
        "frequency-oue": (
            Protocol.frequency(1.0, domain=12, oracle="oue"),
            lambda rng: rng.integers(0, 12, N),
        ),
        "frequency-grr": (
            Protocol.frequency(1.0, domain=12, oracle="grr"),
            lambda rng: rng.integers(0, 12, N),
        ),
        "frequency-olh": (
            Protocol.frequency(1.0, domain=12, oracle="olh"),
            lambda rng: rng.integers(0, 12, N),
        ),
        "histogram": (
            Protocol.histogram(2.0, bins=8),
            lambda rng: rng.uniform(-1, 1, N),
        ),
        "multidim-numeric": (
            Protocol.multidim(4.0, d=5, mechanism="hm"),
            lambda rng: rng.uniform(-1, 1, (N, 5)),
        ),
        "multidim-mixed": (
            Protocol.multidim(4.0, schema=dataset.schema, mechanism="pm"),
            lambda rng: dataset,
        ),
    }


def _encode(protocol, values_fn):
    rng = np.random.default_rng(2019)
    if values_fn is None:
        values = rng.uniform(-1, 1, N)
    else:
        values = values_fn(rng)
    return protocol.client().encode_batch(values, np.random.default_rng(7))


def _assert_estimates_bitwise_equal(a, b):
    if hasattr(a, "histogram"):
        np.testing.assert_array_equal(a.histogram, b.histogram)
        np.testing.assert_array_equal(a.raw, b.raw)
        return
    if hasattr(a, "frequencies"):
        assert a.means == b.means
        for key in a.frequencies:
            np.testing.assert_array_equal(
                a.frequencies[key], b.frequencies[key]
            )
        return
    np.testing.assert_array_equal(
        np.atleast_1d(np.asarray(a)), np.atleast_1d(np.asarray(b))
    )


@pytest.mark.parametrize("name", sorted(_protocol_cases()))
class TestColumnarParity:
    def test_round_trip_bitwise(self, name):
        protocol, values_fn = _protocol_cases()[name]
        reports = _encode(protocol, values_fn)
        block = wire.reports_to_columns(reports)
        rebuilt = wire.columns_to_reports(block)
        acc_a, acc_b = protocol.server(), protocol.server()
        acc_a.absorb(reports)
        acc_b.absorb(rebuilt)
        _assert_estimates_bitwise_equal(acc_a.estimate(), acc_b.estimate())

    def test_absorb_columns_matches_object_path(self, name):
        protocol, values_fn = _protocol_cases()[name]
        reports = _encode(protocol, values_fn)
        block = wire.reports_to_columns(reports)
        acc_obj, acc_col = protocol.server(), protocol.server()
        acc_obj.absorb(reports)
        acc_col.absorb_columns(block)
        assert acc_col.count == acc_obj.count
        _assert_estimates_bitwise_equal(
            acc_obj.estimate(), acc_col.estimate()
        )

    def test_validate_columns_accepts_good_block(self, name):
        protocol, values_fn = _protocol_cases()[name]
        block = wire.reports_to_columns(_encode(protocol, values_fn))
        acc = protocol.server()
        acc.validate_columns(block)  # must not raise
        assert acc.count == 0  # and must not mutate

    def test_frame_round_trip_bitwise(self, name):
        protocol, values_fn = _protocol_cases()[name]
        reports = _encode(protocol, values_fn)
        block = wire.reports_to_columns(reports)
        frame = wire.pack_columns(
            block, "fp", users=["u1", "u2"], idempotency_key="key-1"
        )
        envelope = wire.unpack_columns(frame)
        assert envelope["wire_version"] == wire.WIRE_VERSION_COLUMNAR
        assert envelope["fingerprint"] == "fp"
        payload = envelope["payload"]
        assert payload["users"] == ["u1", "u2"]
        assert payload["idempotency_key"] == "key-1"
        rebuilt = payload["columns"]
        assert rebuilt.kind == block.kind
        assert rebuilt.n == block.n
        assert sorted(rebuilt.columns) == sorted(block.columns)
        for key in block.columns:
            original = np.asarray(block.columns[key])
            assert rebuilt.columns[key].dtype == original.dtype
            np.testing.assert_array_equal(rebuilt.columns[key], original)


class TestContainerColumns:
    def test_sampled_numeric_round_trip(self):
        reports = SampledNumericReports(
            d=5,
            k=2,
            cols=np.array([[0, 3], [1, 4]]),
            values=np.array([[0.5, -0.5], [1.5, 2.5]]),
        )
        rebuilt = SampledNumericReports.from_columns(
            reports.to_columns(), d=5, k=2
        )
        np.testing.assert_array_equal(rebuilt.cols, reports.cols)
        np.testing.assert_array_equal(rebuilt.values, reports.values)

    def test_olh_round_trip(self):
        reports = OLHReports(
            seeds=np.array([1, 2, 3], dtype=np.uint64),
            buckets=np.array([0, 1, 0]),
        )
        rebuilt = OLHReports.from_columns(reports.to_columns())
        np.testing.assert_array_equal(rebuilt.seeds, reports.seeds)
        np.testing.assert_array_equal(rebuilt.buckets, reports.buckets)

    def test_mixed_flattens_with_cat_prefix(self):
        reports = MixedReports(
            n=3,
            numeric=np.zeros((3, 1)),
            categorical={"color": np.array([0, 1, 2])},
        )
        columns = reports.to_columns()
        assert set(columns) == {"numeric", "cat.color.array"}
        rebuilt = MixedReports.from_columns(
            columns, n=3, categorical={"color": "array"}
        )
        np.testing.assert_array_equal(
            rebuilt.categorical["color"], reports.categorical["color"]
        )

    def test_mixed_rejects_dotted_attribute_names(self):
        reports = MixedReports(
            n=1,
            numeric=np.zeros((1, 1)),
            categorical={"a.b": np.array([0])},
        )
        with pytest.raises(ValueError, match=r"\."):
            reports.to_columns()


class TestColumnBlock:
    def test_missing_column_is_value_error(self):
        block = ColumnBlock(kind="array", n=1, columns={})
        with pytest.raises(ValueError, match="missing column"):
            block.column("array")

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            ColumnBlock(kind="array", n=-1)

    def test_sub_block_strips_prefix(self):
        block = ColumnBlock(
            kind="mixed",
            n=2,
            columns={
                "numeric": np.zeros((2, 1)),
                "cat.color.array": np.array([0, 1]),
            },
        )
        sub = block.sub_block("color", "array", 2)
        assert sub.kind == "array"
        assert set(sub.columns) == {"array"}


class TestFrameErrors:
    def _frame(self):
        block = ColumnBlock(
            kind="array", n=3, columns={"array": np.arange(3.0)}
        )
        return wire.pack_columns(block, "fp", users=["u"])

    def test_bad_magic_rejected(self):
        with pytest.raises(wire.WireFormatError, match="magic"):
            wire.unpack_columns(b"JSON" + self._frame()[4:])

    def test_plain_json_rejected(self):
        with pytest.raises(wire.WireFormatError, match="magic"):
            wire.unpack_columns(b'{"wire_version": 1}')

    def test_truncated_header_rejected(self):
        frame = self._frame()
        with pytest.raises(wire.WireFormatError, match="truncated"):
            wire.unpack_columns(frame[:10])

    def test_truncated_payload_rejected(self):
        frame = self._frame()
        with pytest.raises(wire.WireFormatError, match="payload holds"):
            wire.unpack_columns(frame[:-8])

    def test_unknown_kind_rejected_on_decode(self):
        block = ColumnBlock(kind="mystery", n=1, columns={})
        with pytest.raises(wire.WireFormatError, match="mystery"):
            wire.columns_to_reports(block)

    def test_decoded_columns_are_writable(self):
        envelope = wire.unpack_columns(self._frame())
        arr = envelope["payload"]["columns"].column("array")
        arr += 1.0  # a read-only frombuffer view would raise here
