"""Property-based tests (hypothesis) for the core invariants.

These target deterministic properties — closed-form identities, domain
invariants, privacy ratio bounds computed from exact pmfs/pdfs — so they
hold for *every* generated input, not just on average.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DuchiMechanism,
    HybridMechanism,
    PiecewiseMechanism,
    SCDFMechanism,
    StaircaseMechanism,
)
from repro.data.normalize import denormalize_from_unit, normalize_to_unit
from repro.frequency.encoders import one_hot, true_frequencies
from repro.frequency.grr import GeneralizedRandomizedResponse
from repro.frequency.unary import OptimizedUnaryEncoding
from repro.multidim import sample_attribute_matrix
from repro.sgd.trainer import clip_gradients
from repro.theory.constants import duchi_cd, hybrid_alpha, optimal_k, pm_c, pm_p
from repro.theory.variance import (
    duchi_1d_worst_variance,
    duchi_md_worst_variance,
    hm_md_worst_variance,
    hm_worst_variance,
    pm_md_worst_variance,
    pm_worst_variance,
)

EPS = st.floats(min_value=0.05, max_value=8.0, allow_nan=False)
UNIT = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)
DIM = st.integers(min_value=2, max_value=64)


class TestPiecewiseMechanismProperties:
    @given(eps=EPS, t=UNIT)
    @settings(max_examples=200, deadline=None)
    def test_plateau_inside_support(self, eps, t):
        pm = PiecewiseMechanism(eps)
        lo, hi = float(pm.left(t)), float(pm.right(t))
        assert -pm.c - 1e-9 <= lo <= hi <= pm.c + 1e-9

    @given(eps=EPS, t=UNIT)
    @settings(max_examples=200, deadline=None)
    def test_pdf_mass_is_one(self, eps, t):
        """p (r - l) + (p/e^eps) (2C - (r - l)) = 1 algebraically."""
        pm = PiecewiseMechanism(eps)
        plateau = pm.p * (pm.c - 1.0)
        wings = pm.p / math.exp(eps) * (2.0 * pm.c - (pm.c - 1.0))
        assert plateau + wings == pytest.approx(1.0, abs=1e-9)

    @given(eps=EPS, t=UNIT, t_prime=UNIT)
    @settings(max_examples=200, deadline=None)
    def test_ldp_ratio_bound_pointwise(self, eps, t, t_prime):
        pm = PiecewiseMechanism(eps)
        x = np.linspace(-pm.c + 1e-9, pm.c - 1e-9, 257)
        ratio = pm.pdf(x, t) / pm.pdf(x, t_prime)
        assert float(ratio.max()) <= math.exp(eps) * (1 + 1e-9)

    @given(eps=EPS, t=UNIT)
    @settings(max_examples=200, deadline=None)
    def test_exact_mean_from_pdf(self, eps, t):
        """Integrating x pdf(x|t) analytically over the three pieces
        recovers t — unbiasedness as an algebraic identity."""
        pm = PiecewiseMechanism(eps)
        lo, hi = float(pm.left(t)), float(pm.right(t))
        w = pm.p / math.exp(eps)

        def segment_mean(a, b, density):
            return density * (b**2 - a**2) / 2.0

        mean = (
            segment_mean(-pm.c, lo, w)
            + segment_mean(lo, hi, pm.p)
            + segment_mean(hi, pm.c, w)
        )
        assert mean == pytest.approx(t, abs=1e-9)

    @given(eps=EPS)
    @settings(max_examples=100, deadline=None)
    def test_c_p_positive(self, eps):
        assert pm_c(eps) > 1.0
        assert pm_p(eps) > 0.0


class TestOrderingProperties:
    @given(eps=EPS)
    @settings(max_examples=200, deadline=None)
    def test_hm_is_lower_envelope_1d(self, eps):
        hm = hm_worst_variance(eps)
        assert hm <= pm_worst_variance(eps) + 1e-12
        assert hm <= duchi_1d_worst_variance(eps) + 1e-12

    @given(eps=EPS, d=DIM)
    @settings(max_examples=200, deadline=None)
    def test_corollary2_everywhere(self, eps, d):
        hm = hm_md_worst_variance(eps, d)
        pm = pm_md_worst_variance(eps, d)
        du = duchi_md_worst_variance(eps, d)
        assert hm < pm < du

    @given(eps=EPS)
    @settings(max_examples=100, deadline=None)
    def test_alpha_valid(self, eps):
        assert 0.0 <= hybrid_alpha(eps) < 1.0

    @given(eps=st.floats(min_value=0.05, max_value=100.0), d=DIM)
    @settings(max_examples=200, deadline=None)
    def test_k_in_range(self, eps, d):
        assert 1 <= optimal_k(eps, d) <= d

    @given(d=st.integers(min_value=1, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_cd_at_least_one_and_split_no_larger(self, d):
        assert duchi_cd(d, "split") <= duchi_cd(d, "shared")
        assert duchi_cd(d, "split") >= 1.0


class TestMechanismOutputProperties:
    @given(
        eps=EPS,
        values=st.lists(UNIT, min_size=1, max_size=30),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=100, deadline=None)
    def test_pm_output_in_range(self, eps, values, seed):
        pm = PiecewiseMechanism(eps)
        out = pm.privatize(np.array(values), seed)
        assert np.all(np.abs(out) <= pm.c + 1e-9)

    @given(
        eps=EPS,
        values=st.lists(UNIT, min_size=1, max_size=30),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=100, deadline=None)
    def test_duchi_output_two_point(self, eps, values, seed):
        mech = DuchiMechanism(eps)
        out = mech.privatize(np.array(values), seed)
        assert np.all(np.isclose(np.abs(out), mech.bound))

    @given(
        eps=EPS,
        seed=st.integers(min_value=0, max_value=2**31),
        t=UNIT,
    )
    @settings(max_examples=100, deadline=None)
    def test_hm_output_in_union_range(self, eps, seed, t):
        hm = HybridMechanism(eps)
        lo, hi = hm.output_range()
        out = hm.privatize(np.full(16, t), seed)
        assert np.all((out >= lo - 1e-9) & (out <= hi + 1e-9))

    @given(eps=EPS)
    @settings(max_examples=60, deadline=None)
    def test_piecewise_constant_normalization(self, eps):
        """SCDF/Staircase constructors assert the mass identity; here we
        confirm it holds over the whole eps range hypothesis explores."""
        for cls in (SCDFMechanism, StaircaseMechanism):
            mech = cls(eps)
            decay = math.exp(-eps)
            total = 2.0 * mech.m * mech.a + 2.0 * (
                2.0 * mech.a * decay / (1.0 - decay)
            )
            assert total == pytest.approx(1.0, abs=1e-9)


class TestFrequencyOracleProperties:
    @given(eps=EPS, k=st.integers(min_value=2, max_value=32))
    @settings(max_examples=150, deadline=None)
    def test_grr_pmf_valid_and_tight(self, eps, k):
        oracle = GeneralizedRandomizedResponse(eps, k)
        p, q = oracle.support_probabilities
        assert p + (k - 1) * q == pytest.approx(1.0)
        assert p / q == pytest.approx(math.exp(eps))

    @given(eps=EPS, k=st.integers(min_value=2, max_value=32))
    @settings(max_examples=150, deadline=None)
    def test_oue_bit_ratio_bound(self, eps, k):
        oracle = OptimizedUnaryEncoding(eps, k)
        p, q = oracle.support_probabilities
        ratio = (p * (1 - q)) / (q * (1 - p))
        assert ratio <= math.exp(eps) * (1 + 1e-9)

    @given(
        k=st.integers(min_value=2, max_value=12),
        values=st.lists(
            st.integers(min_value=0, max_value=11), min_size=1, max_size=50
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_one_hot_roundtrip(self, k, values):
        values = [v % k for v in values]
        encoded = one_hot(values, k)
        assert np.array_equal(np.argmax(encoded, axis=1), values)
        assert np.all(encoded.sum(axis=1) == 1.0)

    @given(
        k=st.integers(min_value=2, max_value=12),
        values=st.lists(
            st.integers(min_value=0, max_value=11), min_size=1, max_size=50
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_true_frequencies_normalized(self, k, values):
        values = [v % k for v in values]
        freqs = true_frequencies(values, k)
        assert freqs.sum() == pytest.approx(1.0)
        assert np.all(freqs >= 0.0)


class TestDataProperties:
    @given(
        low=st.floats(min_value=-1e5, max_value=1e5 - 1, allow_nan=False),
        width=st.floats(min_value=1e-3, max_value=1e5, allow_nan=False),
        u=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_normalize_roundtrip(self, low, width, u):
        high = low + width
        value = low + u * width
        normalized = normalize_to_unit([value], low, high)
        assert -1.0 <= normalized[0] <= 1.0
        back = denormalize_from_unit(normalized, low, high)
        assert back[0] == pytest.approx(value, abs=1e-6 * max(1.0, width))

    @given(
        values=st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
        bound=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_clip_gradients_bound(self, values, bound):
        out = clip_gradients(np.array(values), bound)
        assert np.all(np.abs(out) <= bound)
        # Values already inside are untouched.
        inside = np.abs(np.array(values)) <= bound
        assert np.allclose(out[inside], np.array(values)[inside])

    @given(
        n=st.integers(min_value=1, max_value=50),
        d=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
        data=st.data(),
    )
    @settings(max_examples=150, deadline=None)
    def test_attribute_sampling_invariants(self, n, d, seed, data):
        k = data.draw(st.integers(min_value=1, max_value=d))
        idx = sample_attribute_matrix(n, d, k, seed)
        assert idx.shape == (n, k)
        assert idx.min() >= 0 and idx.max() < d
        for row in idx:
            assert len(set(row.tolist())) == k
