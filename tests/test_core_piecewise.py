"""Tests for the Piecewise Mechanism (the paper's Algorithm 2)."""

import math

import numpy as np
import pytest

from repro.core import PiecewiseMechanism
from repro.theory.constants import pm_c, pm_p


class TestParameters:
    def test_c_formula(self, epsilon):
        e_half = math.exp(epsilon / 2.0)
        assert PiecewiseMechanism(epsilon).c == pytest.approx(
            (e_half + 1.0) / (e_half - 1.0)
        )

    def test_c_shrinks_with_epsilon(self):
        cs = [pm_c(e) for e in (0.5, 1.0, 2.0, 4.0)]
        assert cs == sorted(cs, reverse=True)

    def test_c_always_exceeds_one(self, epsilon):
        assert pm_c(epsilon) > 1.0

    def test_plateau_width_is_c_minus_1(self, epsilon):
        pm = PiecewiseMechanism(epsilon)
        for t in (-1.0, 0.0, 0.4, 1.0):
            assert float(pm.right(t) - pm.left(t)) == pytest.approx(
                pm.c - 1.0
            )

    def test_plateau_endpoints_at_extremes(self, epsilon):
        pm = PiecewiseMechanism(epsilon)
        # t = 1: the plateau's right edge is exactly C (no right wing).
        assert float(pm.right(1.0)) == pytest.approx(pm.c)
        # t = -1: the plateau's left edge is exactly -C (no left wing).
        assert float(pm.left(-1.0)) == pytest.approx(-pm.c)

    def test_plateau_centered_for_zero_input(self, epsilon):
        pm = PiecewiseMechanism(epsilon)
        assert float(pm.left(0.0)) == pytest.approx(-float(pm.right(0.0)))


class TestPdf:
    def test_integrates_to_one(self, epsilon):
        pm = PiecewiseMechanism(epsilon)
        x = np.linspace(-pm.c, pm.c, 2_000_001)
        for t in (-1.0, 0.0, 0.5, 1.0):
            assert np.trapezoid(pm.pdf(x, t), x) == pytest.approx(1.0, abs=1e-3)

    def test_two_level_structure(self):
        pm = PiecewiseMechanism(1.0)
        x = np.linspace(-pm.c + 1e-6, pm.c - 1e-6, 10_001)
        levels = np.unique(np.round(pm.pdf(x, 0.5), 12))
        assert len(levels) == 2
        assert levels.max() == pytest.approx(pm.p)
        assert levels.min() == pytest.approx(pm.p / math.exp(1.0))

    def test_zero_outside_support(self):
        pm = PiecewiseMechanism(1.0)
        assert float(pm.pdf(pm.c + 0.5, 0.0)) == 0.0
        assert float(pm.pdf(-pm.c - 0.5, 0.0)) == 0.0

    def test_ldp_ratio_exactly_e_eps(self, epsilon):
        """The plateau/wing ratio is e^eps, so for any x and any pair of
        inputs the density ratio is within [e^-eps, e^eps] — tight."""
        pm = PiecewiseMechanism(epsilon)
        x = np.linspace(-pm.c + 1e-9, pm.c - 1e-9, 4001)
        worst = 0.0
        for t in (-1.0, -0.3, 0.0, 0.6, 1.0):
            for t_prime in (-1.0, 0.0, 1.0):
                ratio = pm.pdf(x, t) / pm.pdf(x, t_prime)
                worst = max(worst, float(ratio.max()))
        assert worst <= math.exp(epsilon) * (1 + 1e-9)
        assert worst == pytest.approx(math.exp(epsilon), rel=1e-6)

    def test_center_mass(self, epsilon):
        """P[output on plateau] = e^{eps/2}/(e^{eps/2}+1) analytically."""
        pm = PiecewiseMechanism(epsilon)
        e_half = math.exp(epsilon / 2.0)
        assert pm.p * (pm.c - 1.0) == pytest.approx(e_half / (e_half + 1.0))


class TestSampling:
    def test_output_in_range(self, rng, epsilon):
        pm = PiecewiseMechanism(epsilon)
        out = pm.privatize(rng.uniform(-1, 1, 20_000), rng)
        assert out.min() >= -pm.c and out.max() <= pm.c

    def test_empirical_histogram_matches_pdf(self, rng):
        """Histogram of samples vs analytic pdf for t = 0.5 (Fig. 2b)."""
        pm = PiecewiseMechanism(1.0)
        t = 0.5
        out = pm.privatize(np.full(400_000, t), rng)
        bins = np.linspace(-pm.c, pm.c, 81)
        hist, edges = np.histogram(out, bins=bins, density=True)
        centers = (edges[:-1] + edges[1:]) / 2.0
        want = pm.pdf(centers, t)
        # Exclude the two bins straddling the plateau discontinuities.
        lo, hi = float(pm.left(t)), float(pm.right(t))
        keep = (np.abs(centers - lo) > 0.15) & (np.abs(centers - hi) > 0.15)
        assert np.allclose(hist[keep], want[keep], atol=0.02)

    def test_plateau_hit_rate(self, rng, epsilon):
        pm = PiecewiseMechanism(epsilon)
        t = 0.3
        out = pm.privatize(np.full(200_000, t), rng)
        on_plateau = np.mean(
            (out >= float(pm.left(t))) & (out <= float(pm.right(t)))
        )
        e_half = math.exp(epsilon / 2.0)
        assert on_plateau == pytest.approx(e_half / (e_half + 1.0), abs=0.01)

    def test_no_wing_samples_at_t_one(self, rng):
        """At t = 1 the right wing has length 0; all mass is left of r."""
        pm = PiecewiseMechanism(1.0)
        out = pm.privatize(np.ones(100_000), rng)
        assert out.max() <= pm.c + 1e-12


class TestVariance:
    def test_worst_case_at_endpoints(self):
        pm = PiecewiseMechanism(1.0)
        grid = np.linspace(-1, 1, 101)
        assert pm.worst_case_variance() == pytest.approx(
            float(pm.variance(grid).max())
        )

    def test_variance_decreases_with_magnitude(self):
        pm = PiecewiseMechanism(1.0)
        assert float(pm.variance(0.0)) < float(pm.variance(0.5)) < float(
            pm.variance(1.0)
        )

    def test_beats_laplace_everywhere(self, epsilon):
        """PM's worst-case variance is strictly below Laplace's 8/eps^2."""
        assert (
            PiecewiseMechanism(epsilon).worst_case_variance()
            < 8.0 / epsilon**2
        )

    def test_plateau_density_positive(self, epsilon):
        assert pm_p(epsilon) > 0.0
