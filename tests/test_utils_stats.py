"""Tests for repro.utils.stats."""

import math

import numpy as np
import pytest

from repro.utils.stats import (
    confidence_radius,
    empirical_mse,
    mean_and_sem,
    running_mean,
)


class TestEmpiricalMse:
    def test_zero_for_identical(self):
        x = np.array([0.1, -0.2, 0.3])
        assert empirical_mse(x, x) == 0.0

    def test_known_value(self):
        assert empirical_mse([1.0, 2.0], [0.0, 0.0]) == pytest.approx(2.5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            empirical_mse([1.0], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_mse([], [])


class TestMeanAndSem:
    def test_single_sample_sem_zero(self):
        mean, sem = mean_and_sem([3.0])
        assert mean == 3.0
        assert sem == 0.0

    def test_constant_samples(self):
        mean, sem = mean_and_sem([2.0, 2.0, 2.0])
        assert mean == 2.0
        assert sem == 0.0

    def test_known_sem(self):
        mean, sem = mean_and_sem([0.0, 2.0])
        assert mean == 1.0
        # std(ddof=1) = sqrt(2), sem = sqrt(2)/sqrt(2) = 1
        assert sem == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_and_sem([])


class TestConfidenceRadius:
    def test_shrinks_with_n(self):
        assert confidence_radius(1.0, 10_000) < confidence_radius(1.0, 100)

    def test_grows_with_variance(self):
        assert confidence_radius(4.0, 100) == pytest.approx(
            2.0 * confidence_radius(1.0, 100)
        )

    def test_tighter_beta_wider_radius(self):
        assert confidence_radius(1.0, 100, beta=0.01) > confidence_radius(
            1.0, 100, beta=0.1
        )

    def test_exact_formula(self):
        got = confidence_radius(2.0, 50, beta=0.05)
        want = math.sqrt(2.0 * 2.0 * math.log(2.0 / 0.05) / 50)
        assert got == pytest.approx(want)

    @pytest.mark.parametrize("bad_n", [0, -5])
    def test_bad_n_raises(self, bad_n):
        with pytest.raises(ValueError):
            confidence_radius(1.0, bad_n)

    @pytest.mark.parametrize("bad_beta", [0.0, 1.0, -0.1, 2.0])
    def test_bad_beta_raises(self, bad_beta):
        with pytest.raises(ValueError):
            confidence_radius(1.0, 10, beta=bad_beta)

    def test_negative_variance_raises(self):
        with pytest.raises(ValueError):
            confidence_radius(-1.0, 10)


class TestRunningMean:
    def test_values(self):
        got = running_mean(np.array([1.0, 3.0, 5.0]))
        assert np.allclose(got, [1.0, 2.0, 3.0])

    def test_empty(self):
        assert running_mean(np.array([])).size == 0

    def test_2d_raises(self):
        with pytest.raises(ValueError):
            running_mean(np.ones((2, 2)))
