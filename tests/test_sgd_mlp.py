"""Tests for the LDP neural network (the paper's future-work extension)."""

import numpy as np
import pytest

from repro.sgd.mlp import MLPClassifier, MLPLoss
from repro.sgd.trainer import LDPSGDTrainer, NonPrivateSGDTrainer


def _xor_data(rng, n=20_000):
    """A task no linear model can solve: sign(x0 * x1)."""
    x = rng.uniform(-1, 1, (n, 2))
    y = np.where(x[:, 0] * x[:, 1] > 0, 1.0, -1.0)
    return x, y


class TestMLPLoss:
    def test_parameter_dim(self):
        loss = MLPLoss(hidden=8)
        # W1 (8 x 5) + b1 (8) + w2 (8) + b2 (1).
        assert loss.parameter_dim(5) == 8 * 5 + 8 + 8 + 1

    def test_initial_parameters_random_and_seeded(self):
        loss = MLPLoss(hidden=4)
        a = loss.initial_parameters(3, 0)
        b = loss.initial_parameters(3, 0)
        c = loss.initial_parameters(3, 1)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert np.any(a != 0.0)  # zeros would be a saddle point

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            MLPLoss(hidden=0)
        with pytest.raises(ValueError):
            MLPLoss(init_scale=0.0)

    def test_gradient_matches_finite_differences(self, rng):
        loss = MLPLoss(hidden=3)
        x = rng.uniform(-1, 1, (8, 4))
        y = rng.choice([-1.0, 1.0], 8)
        beta = loss.initial_parameters(4, rng)
        analytic = loss.gradient(beta, x, y)
        h = 1e-6
        numeric = np.zeros_like(analytic)
        for j in range(beta.size):
            plus, minus = beta.copy(), beta.copy()
            plus[j] += h
            minus[j] -= h
            numeric[:, j] = (
                loss.value(plus, x, y) - loss.value(minus, x, y)
            ) / (2 * h)
        assert np.allclose(analytic, numeric, atol=1e-6)

    def test_value_stable_for_large_scores(self):
        loss = MLPLoss(hidden=2)
        beta = np.full(loss.parameter_dim(1), 50.0)
        x = np.array([[1.0]])
        assert np.isfinite(loss.value(beta, x, np.array([1.0])))[0]
        assert np.all(np.isfinite(loss.gradient(beta, x, np.array([-1.0]))))

    def test_predictions_are_signs(self, rng):
        loss = MLPLoss(hidden=4)
        beta = loss.initial_parameters(3, rng)
        preds = loss.predict(beta, rng.uniform(-1, 1, (20, 3)))
        assert set(np.unique(preds)) <= {-1.0, 1.0}

    def test_proba_in_unit_interval(self, rng):
        loss = MLPLoss(hidden=4)
        beta = loss.initial_parameters(3, rng)
        proba = loss.predict_proba(beta, rng.uniform(-1, 1, (20, 3)))
        assert np.all((proba >= 0.0) & (proba <= 1.0))

    def test_wrong_beta_length_rejected(self, rng):
        loss = MLPLoss(hidden=4)
        with pytest.raises(ValueError):
            loss.value(np.zeros(5), rng.uniform(-1, 1, (4, 3)),
                       np.ones(4))


class TestMLPClassifier:
    def test_solves_xor_nonprivately(self, rng):
        x, y = _xor_data(rng)
        model = MLPClassifier(hidden=8).fit(x, y, rng)
        assert model.score(x, y) < 0.2

    def test_linear_models_cannot(self, rng):
        from repro.sgd import SupportVectorMachine

        x, y = _xor_data(rng)
        linear = SupportVectorMachine().fit(x, y, rng)
        assert linear.score(x, y) > 0.4  # chance-level

    def test_ldp_mlp_beats_chance_on_xor(self, rng):
        x, y = _xor_data(rng, n=30_000)
        model = MLPClassifier(epsilon=4.0, hidden=8).fit(x, y, rng)
        assert model.score(x, y) < 0.42

    def test_trainer_types(self):
        assert isinstance(MLPClassifier().trainer, NonPrivateSGDTrainer)
        assert isinstance(MLPClassifier(epsilon=1.0).trainer, LDPSGDTrainer)

    def test_gradient_dimension_drives_group_size(self, rng):
        """The LDP collector must operate on the full parameter vector
        (not the feature dimension)."""
        x, y = _xor_data(rng, n=2_000)
        model = MLPClassifier(epsilon=2.0, hidden=4, group_size=500)
        model.fit(x, y, rng)
        assert model.beta.shape == (model.loss.parameter_dim(2),)

    def test_hidden_property(self):
        assert MLPClassifier(hidden=6).hidden == 6

    def test_predict_proba(self, rng):
        x, y = _xor_data(rng, n=2_000)
        model = MLPClassifier(hidden=4).fit(x, y, rng)
        proba = model.predict_proba(x[:50])
        assert np.all((proba >= 0.0) & (proba <= 1.0))

    def test_binary_labels_enforced(self, rng):
        model = MLPClassifier(hidden=4)
        with pytest.raises(ValueError):
            model.fit(np.zeros((10, 2)), np.linspace(0, 1, 10), rng)
