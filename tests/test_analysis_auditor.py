"""Tests for the empirical LDP auditor."""

import numpy as np
import pytest

from repro.analysis.auditor import (
    AuditResult,
    audit_frequency_oracle,
    audit_numeric_mechanism,
)
from repro.core import (
    DuchiMechanism,
    HybridMechanism,
    LaplaceMechanism,
    PiecewiseMechanism,
)
from repro.frequency import get_oracle

N = 60_000  # enough for eps ~ 1 audits, keeps the suite fast


class TestNumericAudits:
    @pytest.mark.parametrize(
        "mechanism_cls",
        [PiecewiseMechanism, HybridMechanism, DuchiMechanism, LaplaceMechanism],
    )
    def test_correct_mechanisms_pass(self, mechanism_cls, rng):
        result = audit_numeric_mechanism(
            mechanism_cls(1.0), samples_per_input=N, rng=rng
        )
        assert result.passed, str(result)

    def test_lower_bound_is_tight_for_duchi(self, rng):
        """Duchi's two-point output makes the audit nearly exact: the
        lower bound should approach eps."""
        result = audit_numeric_mechanism(
            DuchiMechanism(1.0), samples_per_input=200_000, rng=rng
        )
        assert 0.9 <= result.observed_epsilon <= 1.0

    def test_overspending_mechanism_flagged(self, rng):
        """A mechanism calibrated for eps=4 but *claiming* eps=1 must
        fail the audit decisively."""
        result = audit_numeric_mechanism(
            PiecewiseMechanism(4.0),
            claimed_epsilon=1.0,
            samples_per_input=N,
            rng=rng,
        )
        assert not result.passed
        assert result.observed_epsilon > 2.0

    def test_default_claim_is_mechanism_epsilon(self, rng):
        result = audit_numeric_mechanism(
            DuchiMechanism(2.0), samples_per_input=N, rng=rng
        )
        assert result.claimed_epsilon == 2.0

    def test_raw_at_least_lower_bound(self, rng):
        result = audit_numeric_mechanism(
            PiecewiseMechanism(1.0), samples_per_input=N, rng=rng
        )
        assert result.raw_max_log_ratio >= result.observed_epsilon

    def test_too_few_samples_rejected(self, rng):
        with pytest.raises(ValueError):
            audit_numeric_mechanism(
                PiecewiseMechanism(1.0), samples_per_input=10, rng=rng
            )

    def test_result_string_contains_verdict(self, rng):
        result = audit_numeric_mechanism(
            DuchiMechanism(1.0), samples_per_input=N, rng=rng
        )
        assert "PASS" in str(result) or "FAIL" in str(result)


class TestOracleAudits:
    @pytest.mark.parametrize("name", ["grr", "sue", "oue", "olh"])
    def test_correct_oracles_pass(self, name, rng):
        result = audit_frequency_oracle(
            get_oracle(name, 1.0, 5), samples_per_input=N, rng=rng
        )
        assert result.passed, str(result)

    @pytest.mark.parametrize("name", ["grr", "oue"])
    def test_lower_bound_near_eps(self, name, rng):
        """GRR/OUE audits are essentially exact (finite pmfs)."""
        result = audit_frequency_oracle(
            get_oracle(name, 1.0, 5), samples_per_input=200_000, rng=rng
        )
        assert 0.85 <= result.observed_epsilon <= 1.0

    def test_overspending_oracle_flagged(self, rng):
        result = audit_frequency_oracle(
            get_oracle("grr", 4.0, 5),
            claimed_epsilon=1.0,
            samples_per_input=N,
            rng=rng,
        )
        assert not result.passed
        assert result.observed_epsilon > 2.0

    def test_shared_tie_duchi_md_exceeds_eps(self, rng):
        """The auditor's 1-D machinery also demonstrates the Algorithm 3
        tie finding end-to-end: for d=2 the paper-literal variant's
        first-coordinate distribution at corner inputs leaks more than
        eps.  (Exact enumeration of this lives in test_core_duchi; here
        we check the empirical pipeline agrees.)"""
        from repro.core import DuchiMultidimMechanism

        eps = 1.0
        shared = DuchiMultidimMechanism(eps, 2, tie_breaking="shared")
        split = DuchiMultidimMechanism(eps, 2, tie_breaking="split")

        def first_coordinate_codes(mech, t):
            reports = mech.privatize(np.tile(t, (N, 1)), rng)
            # Joint sign pattern of both coordinates (4 outcomes).
            return (reports[:, 0] > 0).astype(int) * 2 + (
                reports[:, 1] > 0
            ).astype(int)

        def observed_loss(mech):
            code_a = first_coordinate_codes(mech, np.array([-1.0, 1.0]))
            code_b = first_coordinate_codes(mech, np.array([1.0, 1.0]))
            count_a = np.bincount(code_a, minlength=4) + 0.5
            count_b = np.bincount(code_b, minlength=4) + 0.5
            prob_a = count_a / count_a.sum()
            prob_b = count_b / count_b.sum()
            log_ratio = np.abs(np.log(prob_a) - np.log(prob_b))
            se = np.sqrt(1.0 / count_a + 1.0 / count_b)
            return float(np.max(log_ratio - 4.0 * se))

        assert observed_loss(shared) > eps        # leaks beyond eps
        assert observed_loss(split) <= eps + 1e-9  # exactly eps-LDP
