"""Unit tests for the campaign subsystem (no network).

Lifecycle state machine, fingerprint-keyed registry, and the
cross-campaign ledger's atomic batch semantics — everything the
multi-tenant server composes, exercised directly.
"""

import json

import numpy as np
import pytest

from repro.analysis.accountant import BudgetExceededError
from repro.campaigns import (
    Campaign,
    CampaignRegistry,
    CampaignState,
    CrossCampaignLedger,
    InvalidTransitionError,
    UnknownCampaignError,
    batch_multiplicity,
    check_transition,
)
from repro.protocol import Protocol
from repro.service import wire


def _mean_spec(eps=1.0, mechanism="hm"):
    return Protocol.numeric_mean(eps, mechanism).spec


class TestLifecycle:
    def test_forward_transitions(self):
        assert (
            check_transition(CampaignState.OPEN, CampaignState.SEALED)
            is CampaignState.SEALED
        )
        assert (
            check_transition(CampaignState.SEALED, CampaignState.ESTIMATED)
            is CampaignState.ESTIMATED
        )

    def test_self_transition_is_noop(self):
        for state in CampaignState:
            assert check_transition(state, state) is state

    @pytest.mark.parametrize(
        "current,target",
        [
            ("open", "estimated"),  # cannot skip sealing
            ("sealed", "open"),  # cannot reopen
            ("estimated", "open"),
            ("estimated", "sealed"),
        ],
    )
    def test_illegal_jumps_rejected(self, current, target):
        with pytest.raises(InvalidTransitionError):
            check_transition(
                CampaignState(current), CampaignState(target)
            )

    def test_unknown_state_string_rejected(self):
        with pytest.raises(InvalidTransitionError):
            CampaignState.coerce("draining")

    def test_campaign_walks_the_graph(self):
        campaign = Campaign(_mean_spec())
        assert campaign.state is CampaignState.OPEN
        assert campaign.accepts_reports
        campaign.seal()
        assert campaign.state is CampaignState.SEALED
        assert not campaign.accepts_reports
        campaign.seal()  # idempotent
        assert campaign.state is CampaignState.SEALED
        campaign.mark_estimated()
        assert campaign.state is CampaignState.ESTIMATED
        campaign.seal()  # sealing an estimated campaign stays estimated
        assert campaign.state is CampaignState.ESTIMATED

    def test_open_campaign_cannot_jump_to_estimated(self):
        campaign = Campaign(_mean_spec())
        with pytest.raises(InvalidTransitionError):
            campaign.mark_estimated()


class TestRegistry:
    def test_keyed_by_spec_fingerprint(self):
        registry = CampaignRegistry()
        spec = _mean_spec()
        campaign, created = registry.register(spec)
        assert created
        assert campaign.fingerprint == wire.spec_fingerprint(spec)
        assert registry.get(campaign.fingerprint) is campaign
        assert campaign.fingerprint in registry

    def test_registration_idempotent_keeps_live_state(self):
        registry = CampaignRegistry()
        campaign, _ = registry.register(_mean_spec())
        campaign.batches_accepted = 7
        again, created = registry.register(_mean_spec())
        assert not created
        assert again is campaign
        assert again.batches_accepted == 7

    def test_distinct_specs_distinct_campaigns(self):
        registry = CampaignRegistry()
        a, _ = registry.register(_mean_spec(1.0))
        b, _ = registry.register(_mean_spec(2.0))
        assert a.fingerprint != b.fingerprint
        assert len(registry) == 2

    def test_default_routing(self):
        registry = CampaignRegistry()
        default, _ = registry.register(_mean_spec(), default=True)
        other, _ = registry.register(_mean_spec(2.0))
        assert registry.resolve(None) is default
        assert registry.resolve(other.fingerprint) is other
        assert registry.default is default

    def test_no_default_rejects_anonymous_routing(self):
        registry = CampaignRegistry()
        registry.register(_mean_spec())
        with pytest.raises(UnknownCampaignError):
            registry.resolve(None)

    def test_unknown_fingerprint_rejected(self):
        registry = CampaignRegistry()
        with pytest.raises(UnknownCampaignError):
            registry.get("f" * 64)

    def test_second_default_rejected(self):
        registry = CampaignRegistry()
        registry.register(_mean_spec(), default=True)
        with pytest.raises(ValueError):
            registry.register(_mean_spec(2.0), default=True)

    def test_describe_lists_default_first(self):
        registry = CampaignRegistry()
        registry.register(_mean_spec(2.0))
        registry.register(_mean_spec(), default=True)
        listing = registry.describe()
        assert listing[0]["default"] is True
        assert {entry["state"] for entry in listing} == {"open"}


class TestCampaignSnapshotRoundTrip:
    def test_bitwise_restore(self):
        protocol = Protocol.frequency(1.0, domain=12)
        campaign = Campaign(protocol)
        rng = np.random.default_rng(3)
        reports = protocol.client().encode_batch(
            rng.integers(0, 12, 150), np.random.default_rng(9)
        )
        campaign.accumulator.absorb(reports)
        campaign.seen_keys = {"k1", "k2"}
        campaign.batches_accepted = 1
        campaign.seal()
        campaign.saved_seq = 1

        manifest = json.loads(json.dumps(campaign.manifest_entry()))
        payload = json.loads(json.dumps(campaign.snapshot_payload()))
        rebuilt = Campaign(manifest["spec"]).restore(manifest, payload)

        assert rebuilt.fingerprint == campaign.fingerprint
        assert rebuilt.state is CampaignState.SEALED
        assert rebuilt.seen_keys == {"k1", "k2"}
        assert rebuilt.batches_accepted == 1
        assert not rebuilt.dirty
        np.testing.assert_array_equal(
            rebuilt.accumulator.estimate(),
            campaign.accumulator.estimate(),
        )

    def test_restore_rejects_foreign_payload(self):
        campaign = Campaign(_mean_spec())
        foreign = Campaign(_mean_spec(2.0))
        with pytest.raises(wire.SpecMismatchError):
            campaign.restore(
                foreign.manifest_entry(), foreign.snapshot_payload()
            )


class TestCrossCampaignLedger:
    def test_batch_multiplicity(self):
        assert batch_multiplicity(["a", "b", "a"]) == {"a": 2, "b": 1}

    def test_spend_accumulates_across_campaigns(self):
        ledger = CrossCampaignLedger(2.0)
        ledger.charge_batch({"u": 1}, 1.0, campaign="A" * 64)
        ledger.charge_batch({"u": 1}, 1.0, campaign="B" * 64)
        assert ledger.spent("u") == pytest.approx(2.0)
        # A third campaign finds the user's GLOBAL budget exhausted.
        assert ledger.rejected_users({"u": 1}, 0.5) == ["u"]

    def test_rejection_respects_multiplicity(self):
        ledger = CrossCampaignLedger(1.0)
        assert ledger.rejected_users({"u": 2}, 0.7) == ["u"]
        assert ledger.rejected_users({"u": 1}, 0.7) == []

    def test_spent_by_campaign_breakdown(self):
        ledger = CrossCampaignLedger(3.0)
        ledger.charge_batch({"u": 2}, 0.5, campaign="A" * 64)
        ledger.charge_batch({"u": 1}, 1.5, campaign="B" * 64)
        breakdown = ledger.spent_by_campaign("u")
        assert breakdown == {
            "A" * 64: pytest.approx(1.0),
            "B" * 64: pytest.approx(1.5),
        }

    def test_missed_precheck_cannot_corrupt(self):
        ledger = CrossCampaignLedger(1.0)
        ledger.charge_batch({"u": 1}, 1.0, campaign="A" * 64)
        with pytest.raises(BudgetExceededError):
            ledger.charge_batch({"u": 1}, 1.0, campaign="B" * 64)
        assert ledger.spent("u") == pytest.approx(1.0)

    def test_round_trip_survives_json_bitwise(self):
        ledger = CrossCampaignLedger(2.0)
        # 0.1 is not exactly representable: a lossy float path would
        # show up here.
        ledger.charge_batch({"u1": 1, "u2": 3}, 0.1, campaign="A" * 64)
        ledger.charge_batch({"u1": 1}, 0.3, campaign="B" * 64)
        rebuilt = CrossCampaignLedger.from_dict(
            json.loads(json.dumps(ledger.to_dict()))
        )
        assert rebuilt.to_dict() == ledger.to_dict()
        assert rebuilt.spent("u1") == ledger.spent("u1")
        assert rebuilt.spent_by_campaign("u2") == (
            ledger.spent_by_campaign("u2")
        )
