"""Tests for the BR/MX-like census dataset generators."""

import numpy as np
import pytest

from repro.data.census import (
    BR_CATEGORICAL,
    INCOME,
    INCOME_RANGE,
    MX_CATEGORICAL,
    _marginal,
    make_br_like,
    make_mx_like,
)


class TestShapes:
    def test_br_schema_matches_paper(self, rng):
        """BR: 16 attributes — 6 numeric, 10 categorical."""
        ds = make_br_like(1_000, rng=rng)
        assert ds.schema.d == 16
        assert len(ds.schema.numeric) == 6
        assert len(ds.schema.categorical) == 10

    def test_mx_schema_matches_paper(self, rng):
        """MX: 19 attributes — 5 numeric, 14 categorical."""
        ds = make_mx_like(1_000, rng=rng)
        assert ds.schema.d == 19
        assert len(ds.schema.numeric) == 5
        assert len(ds.schema.categorical) == 14

    def test_row_count(self, rng):
        assert make_br_like(12_345, rng=rng).n == 12_345

    def test_bad_n(self, rng):
        with pytest.raises(ValueError):
            make_br_like(0, rng=rng)

    def test_income_present_and_bounded(self, rng):
        for ds in (make_br_like(5_000, rng=rng), make_mx_like(5_000, rng=rng)):
            income = ds.columns[INCOME]
            assert income.min() >= INCOME_RANGE[0]
            assert income.max() <= INCOME_RANGE[1]

    def test_categorical_cardinalities(self, rng):
        ds = make_mx_like(5_000, rng=rng)
        for name, k in MX_CATEGORICAL:
            attr = ds.schema[name]
            assert attr.cardinality == k
            assert ds.columns[name].max() < k


class TestStatisticalProperties:
    def test_income_is_skewed(self, rng):
        """Normalized income concentrates near the lower end — the shape
        that makes PM/HM shine in Fig. 4 (small |t| inputs)."""
        ds = make_br_like(50_000, rng=rng)
        income_col = [a.name for a in ds.schema.numeric].index(INCOME)
        normalized = ds.numeric_matrix()[:, income_col]
        assert np.median(normalized) < -0.5

    def test_income_correlates_with_education(self, rng):
        ds = make_br_like(50_000, rng=rng)
        corr = np.corrcoef(
            ds.columns[INCOME], ds.columns["education_years"]
        )[0, 1]
        assert corr > 0.3

    def test_income_correlates_with_hours(self, rng):
        ds = make_mx_like(50_000, rng=rng)
        corr = np.corrcoef(ds.columns[INCOME], ds.columns["hours_worked"])[0, 1]
        assert corr > 0.05

    def test_erm_signal_exists(self, rng):
        """An OLS fit on the ERM features must clearly beat predicting
        the mean — the datasets carry learnable signal."""
        ds = make_br_like(20_000, rng=rng)
        x, y = ds.to_erm_features(INCOME)
        x1 = np.column_stack([x, np.ones(len(y))])
        beta, *_ = np.linalg.lstsq(x1, y, rcond=None)
        residual = y - x1 @ beta
        assert np.var(residual) < 0.6 * np.var(y)

    def test_marginals_stable_across_seeds(self):
        a = make_br_like(30_000, rng=1)
        b = make_br_like(30_000, rng=2)
        fa = a.true_categorical_frequencies()["occupation"]
        fb = b.true_categorical_frequencies()["occupation"]
        assert np.all(np.abs(fa - fb) < 0.02)

    def test_marginal_helper_deterministic(self):
        assert np.allclose(_marginal("gender", 2), _marginal("gender", 2))

    def test_marginal_is_sorted_distribution(self):
        probs = _marginal("occupation", 10)
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(np.diff(probs) <= 0)

    def test_reproducible_given_seed(self):
        a = make_mx_like(1_000, rng=42)
        b = make_mx_like(1_000, rng=42)
        for name in a.schema.names:
            assert np.array_equal(a.columns[name], b.columns[name])

    def test_br_mx_share_generator_core(self, rng):
        """Both datasets expose age/income/hours/education."""
        for ds in (make_br_like(100, rng=rng), make_mx_like(100, rng=rng)):
            for name in ("age", INCOME, "hours_worked", "education_years"):
                assert name in ds.columns

    def test_br_categorical_spec_constant(self):
        assert len(BR_CATEGORICAL) == 10
        assert len(MX_CATEGORICAL) == 14


class TestAttributeDependencies:
    def test_dependent_pairs_have_positive_mi(self, rng):
        """The generator injects real dependence for the declared
        parent/child pairs (exercised by the marginal collector)."""
        from repro.multidim import true_marginal_table

        ds = make_br_like(60_000, rng=rng)
        dependent = true_marginal_table(
            ds, "occupation", "employment_status"
        ).mutual_information()
        independent = true_marginal_table(
            ds, "occupation", "gender"
        ).mutual_information()
        assert dependent > 0.1
        assert independent < 0.01

    def test_dependence_stable_across_seeds(self):
        from repro.multidim import true_marginal_table

        a = true_marginal_table(
            make_br_like(60_000, rng=1), "marital_status", "home_ownership"
        )
        b = true_marginal_table(
            make_br_like(60_000, rng=2), "marital_status", "home_ownership"
        )
        assert abs(a.mutual_information() - b.mutual_information()) < 0.02
