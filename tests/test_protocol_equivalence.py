"""Acceptance tests for the protocol layer.

Two guarantees, for every protocol kind:

1. *Adapter equivalence* — with the same rng seed, the protocol path
   (encode_batch + absorb + estimate) reproduces the legacy monolithic
   path (collect / estimate_frequencies / estimate_mean) to 1e-12.
2. *Shard-merge exactness* — absorbing n reports as 4+ batches into one
   accumulator and absorbing the same batches into 4+ accumulators then
   merging (in batch order) yield bitwise-identical estimates.
"""

import warnings

import numpy as np
import pytest

from repro.core.mechanism import get_mechanism
from repro.data.schema import (
    CategoricalAttribute,
    Dataset,
    NumericAttribute,
    Schema,
)
from repro.frequency import LDPHistogram, get_oracle
from repro.multidim import MixedMultidimCollector, MultidimNumericCollector
from repro.protocol import Protocol

SEED = 20190408
SHARDS = 4


def _legacy_call(fn, *args, **kwargs):
    """Run a deprecated legacy entry point without warning noise."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return fn(*args, **kwargs)


def _mixed_dataset(n, rng):
    schema = Schema(
        [
            NumericAttribute("x"),
            CategoricalAttribute("c", 4),
            NumericAttribute("y"),
        ]
    )
    return Dataset(
        schema=schema,
        columns={
            "x": rng.uniform(-1, 1, n),
            "c": rng.integers(0, 4, n),
            "y": rng.uniform(-1, 1, n),
        },
    )


def _sharded_vs_single(protocol, report_batches):
    """(single-accumulator estimate, merged-shards estimate)."""
    single = protocol.server()
    for batch in report_batches:
        single.absorb(batch)
    shards = [protocol.server().absorb(batch) for batch in report_batches]
    merged = shards[0]
    for shard in shards[1:]:
        merged.merge(shard)
    assert len(shards) >= SHARDS
    return single.estimate(), merged.estimate()


class TestNumericMeanProtocol:
    def test_seed_matched_legacy_equivalence(self, rng, epsilon):
        values = rng.uniform(-1, 1, 10_000)
        mech = get_mechanism("hm", epsilon)
        legacy = mech.estimate_mean(
            mech.privatize(values, np.random.default_rng(SEED))
        )
        protocol = Protocol.numeric_mean(epsilon, "hm")
        reports = protocol.client().encode_batch(
            values, np.random.default_rng(SEED)
        )
        est = protocol.server().absorb(reports).estimate()
        assert est == pytest.approx(legacy, abs=1e-12)

    def test_sharded_merge_bitwise(self, rng):
        protocol = Protocol.numeric_mean(1.0, "pm")
        reports = protocol.client().encode_batch(
            rng.uniform(-1, 1, 10_000), rng
        )
        single, merged = _sharded_vs_single(
            protocol, np.array_split(reports, SHARDS)
        )
        assert merged == single  # bitwise


class TestFrequencyProtocol:
    @pytest.mark.parametrize("oracle_name", ["grr", "sue", "oue"])
    def test_seed_matched_legacy_equivalence(self, rng, oracle_name):
        values = rng.integers(0, 6, 12_000)
        oracle = get_oracle(oracle_name, 1.0, 6)
        legacy = oracle.estimate_frequencies(
            oracle.privatize(values, np.random.default_rng(SEED))
        )
        protocol = Protocol.frequency(1.0, domain=6, oracle=oracle_name)
        reports = protocol.client().encode_batch(
            values, np.random.default_rng(SEED)
        )
        est = protocol.server().absorb(reports).estimate()
        assert np.allclose(est, legacy, atol=1e-12)

    def test_sharded_merge_bitwise(self, rng):
        protocol = Protocol.frequency(1.0, domain=6, oracle="oue")
        reports = protocol.client().encode_batch(
            rng.integers(0, 6, 12_000), rng
        )
        single, merged = _sharded_vs_single(
            protocol, np.array_split(reports, SHARDS)
        )
        assert np.array_equal(merged, single)  # bitwise


class TestHistogramProtocol:
    def test_seed_matched_legacy_equivalence(self, rng):
        values = rng.uniform(-1, 1, 15_000)
        hist = LDPHistogram(1.0, bins=8)
        legacy = _legacy_call(
            hist.collect, values, np.random.default_rng(SEED)
        )
        protocol = Protocol.histogram(1.0, bins=8)
        reports = protocol.client().encode_batch(
            values, np.random.default_rng(SEED)
        )
        est = protocol.server().absorb(reports).estimate()
        assert np.allclose(est.raw, legacy.raw, atol=1e-12)
        assert np.allclose(est.histogram, legacy.histogram, atol=1e-12)

    def test_sharded_merge_bitwise(self, rng):
        protocol = Protocol.histogram(1.0, bins=8)
        reports = protocol.client().encode_batch(
            rng.uniform(-1, 1, 15_000), rng
        )
        single, merged = _sharded_vs_single(
            protocol, np.array_split(reports, SHARDS)
        )
        assert np.array_equal(merged.raw, single.raw)  # bitwise
        assert np.array_equal(merged.histogram, single.histogram)


class TestMultidimNumericProtocol:
    def test_seed_matched_legacy_equivalence(self, rng, epsilon):
        t = rng.uniform(-1, 1, (8_000, 10))
        collector = MultidimNumericCollector(epsilon, 10, "hm")
        legacy = _legacy_call(
            collector.collect, t, np.random.default_rng(SEED)
        )
        protocol = Protocol.multidim(epsilon, d=10, mechanism="hm")
        reports = protocol.client().encode_batch(
            t, np.random.default_rng(SEED)
        )
        est = protocol.server().absorb(reports).estimate()
        assert np.allclose(est, legacy, atol=1e-12)

    def test_compact_reports_match_legacy_dense(self, rng):
        t = rng.uniform(-1, 1, (3_000, 6))
        collector = MultidimNumericCollector(4.0, 6, "pm")
        dense_legacy = collector.privatize(t, np.random.default_rng(SEED))
        protocol = Protocol.multidim(4.0, d=6, mechanism="pm")
        reports = protocol.client().encode_batch(
            t, np.random.default_rng(SEED)
        )
        assert np.array_equal(reports.to_dense(), dense_legacy)  # bitwise

    def test_sharded_merge_bitwise(self, rng):
        protocol = Protocol.multidim(4.0, d=10, mechanism="hm")
        reports = protocol.client().encode_batch(
            rng.uniform(-1, 1, (8_000, 10)), rng
        )
        single, merged = _sharded_vs_single(protocol, reports.split(SHARDS))
        assert np.array_equal(merged, single)  # bitwise


class TestMultidimMixedProtocol:
    def test_seed_matched_legacy_equivalence(self, rng, epsilon):
        ds = _mixed_dataset(10_000, rng)
        collector = MixedMultidimCollector(ds.schema, epsilon)
        legacy = _legacy_call(
            collector.collect, ds, np.random.default_rng(SEED)
        )
        protocol = Protocol.multidim(epsilon, schema=ds.schema)
        reports = protocol.client().encode_batch(
            ds, np.random.default_rng(SEED)
        )
        est = protocol.server().absorb(reports).estimate()
        assert set(est.means) == set(legacy.means)
        for name in est.means:
            assert est.means[name] == pytest.approx(
                legacy.means[name], abs=1e-12
            )
        assert set(est.frequencies) == set(legacy.frequencies)
        for name in est.frequencies:
            assert np.allclose(
                est.frequencies[name], legacy.frequencies[name], atol=1e-12
            )

    def test_sharded_merge_bitwise(self, rng):
        ds = _mixed_dataset(12_000, rng)
        protocol = Protocol.multidim(2.0, schema=ds.schema)
        client = protocol.client()
        batches = [
            client.encode_batch(ds.subset(idx), rng)
            for idx in np.array_split(np.arange(ds.n), SHARDS)
        ]
        single, merged = _sharded_vs_single(protocol, batches)
        for name in single.means:
            assert merged.means[name] == single.means[name]  # bitwise
        for name in single.frequencies:
            assert np.array_equal(
                merged.frequencies[name], single.frequencies[name]
            )


class TestStreamingShimsMatchProtocol:
    """The legacy streaming aggregators are the protocol accumulators."""

    def test_streaming_mean_is_accumulator(self, rng):
        from repro.multidim import StreamingMeanAggregator
        from repro.protocol import MultidimMeanAccumulator

        assert issubclass(StreamingMeanAggregator, MultidimMeanAccumulator)
        protocol = Protocol.multidim(4.0, d=5, mechanism="hm")
        reports = protocol.client().encode_batch(
            rng.uniform(-1, 1, (2_000, 5)), rng
        )
        legacy = StreamingMeanAggregator(5).update(reports.to_dense())
        modern = protocol.server().absorb(reports)
        assert np.allclose(
            legacy.estimates(), modern.estimate(), atol=1e-12
        )

    def test_streaming_mixed_is_accumulator(self, rng):
        from repro.multidim import StreamingMixedAggregator
        from repro.protocol import MixedAccumulator

        assert issubclass(StreamingMixedAggregator, MixedAccumulator)
        ds = _mixed_dataset(4_000, rng)
        collector = MixedMultidimCollector(ds.schema, 2.0)
        reports = collector.privatize(ds, np.random.default_rng(SEED))
        legacy = StreamingMixedAggregator(collector).update(reports)
        modern = (
            Protocol.multidim(2.0, schema=ds.schema).server().absorb(reports)
        )
        assert legacy.estimates().means == modern.estimate().means


class TestDeprecationShims:
    def test_collect_warns_but_works(self, rng):
        collector = MultidimNumericCollector(4.0, 4, "hm")
        t = rng.uniform(-1, 1, (500, 4))
        with pytest.warns(DeprecationWarning, match="Protocol.multidim"):
            est = collector.collect(t, rng)
        assert est.shape == (4,)

    def test_mixed_collect_warns(self, rng):
        ds = _mixed_dataset(500, rng)
        collector = MixedMultidimCollector(ds.schema, 2.0)
        with pytest.warns(DeprecationWarning, match="Protocol.multidim"):
            collector.collect(ds, rng)

    def test_histogram_collect_warns(self, rng):
        hist = LDPHistogram(1.0, bins=4)
        with pytest.warns(DeprecationWarning, match="Protocol.histogram"):
            hist.collect(rng.uniform(-1, 1, 500), rng)
