"""Unit tests for the mergeable server accumulators."""

import numpy as np
import pytest

from repro.frequency import OptimizedUnaryEncoding
from repro.protocol import (
    FrequencyAccumulator,
    HistogramAccumulator,
    MeanAccumulator,
    MultidimMeanAccumulator,
    Protocol,
    SampledNumericReports,
)


class TestMeanAccumulator:
    def test_absorb_and_estimate(self):
        acc = MeanAccumulator()
        acc.absorb([1.0, 2.0, 3.0]).absorb([4.0])
        assert acc.estimate() == pytest.approx(2.5)
        assert acc.count == 4

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            MeanAccumulator().estimate()

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            MeanAccumulator().absorb(np.zeros((3, 2)))

    def test_merge_type_checked(self):
        with pytest.raises(ValueError):
            MeanAccumulator().merge(MultidimMeanAccumulator(2))

    def test_merge_equals_combined(self, rng):
        a, b = rng.normal(size=100), rng.normal(size=77)
        merged = (
            MeanAccumulator().absorb(a).merge(MeanAccumulator().absorb(b))
        )
        combined = MeanAccumulator().absorb(np.concatenate([a, b]))
        assert merged.estimate() == pytest.approx(
            combined.estimate(), abs=1e-12
        )


class TestMultidimMeanAccumulator:
    def test_dense_and_sparse_agree(self, rng):
        protocol = Protocol.multidim(4.0, d=8, mechanism="pm")
        t = rng.uniform(-1, 1, (5_000, 8))
        reports = protocol.client().encode_batch(t, rng)

        sparse = MultidimMeanAccumulator(8).absorb(reports)
        dense = MultidimMeanAccumulator(8).absorb(reports.to_dense())
        assert sparse.count == dense.count == 5_000
        assert np.allclose(sparse.estimate(), dense.estimate(), atol=1e-12)

    def test_sparse_d_mismatch(self):
        reports = SampledNumericReports(
            d=4, k=1, cols=np.zeros((3, 1)), values=np.ones((3, 1))
        )
        with pytest.raises(ValueError):
            MultidimMeanAccumulator(5).absorb(reports)

    def test_bad_d(self):
        with pytest.raises(ValueError):
            MultidimMeanAccumulator(0)


class TestSampledNumericReports:
    def test_validation(self):
        with pytest.raises(ValueError):
            SampledNumericReports(
                d=3, k=2, cols=np.zeros((4, 2)), values=np.zeros((4, 1))
            )
        with pytest.raises(ValueError):
            SampledNumericReports(
                d=3, k=2, cols=np.full((4, 2), 3), values=np.zeros((4, 2))
            )

    def test_to_dense_layout(self):
        reports = SampledNumericReports(
            d=4,
            k=2,
            cols=np.array([[0, 2], [3, 1]]),
            values=np.array([[1.0, 2.0], [3.0, 4.0]]),
        )
        dense = reports.to_dense()
        expected = np.array(
            [[1.0, 0.0, 2.0, 0.0], [0.0, 4.0, 0.0, 3.0]]
        )
        assert np.array_equal(dense, expected)

    def test_split_preserves_everything(self, rng):
        protocol = Protocol.multidim(4.0, d=6, mechanism="hm")
        t = rng.uniform(-1, 1, (1_000, 6))
        reports = protocol.client().encode_batch(t, rng)
        shards = reports.split(4)
        assert sum(s.n for s in shards) == reports.n
        assert np.array_equal(
            np.vstack([s.cols for s in shards]), reports.cols
        )
        assert np.array_equal(
            np.vstack([s.values for s in shards]), reports.values
        )


class TestFrequencyAccumulator:
    def test_merge_requires_matching_oracles(self):
        a = FrequencyAccumulator(OptimizedUnaryEncoding(1.0, 4))
        b = FrequencyAccumulator(OptimizedUnaryEncoding(1.0, 5))
        with pytest.raises(ValueError):
            a.merge(b)
        c = FrequencyAccumulator(OptimizedUnaryEncoding(2.0, 4))
        with pytest.raises(ValueError):
            a.merge(c)

    def test_merge_is_exact(self, rng):
        # Support counts are integral, so sharding can never change the
        # estimate, bitwise, regardless of order.
        oracle = OptimizedUnaryEncoding(1.0, 6)
        values = rng.integers(0, 6, 9_000)
        reports = oracle.privatize(values, rng)
        single = FrequencyAccumulator(oracle).absorb(reports)
        order = rng.permutation(9_000)
        shards = [
            FrequencyAccumulator(oracle).absorb(reports[idx])
            for idx in np.array_split(order, 5)
        ]
        merged = shards[0]
        for shard in shards[1:]:
            merged.merge(shard)
        assert np.array_equal(merged.estimate(), single.estimate())


class TestHistogramAccumulator:
    def _acc(self, bins=8, postprocess="norm-sub"):
        protocol = Protocol.histogram(1.0, bins=bins, postprocess=postprocess)
        return protocol.server()

    def test_server_builds_histogram_accumulator(self):
        assert isinstance(self._acc(), HistogramAccumulator)

    def test_merge_rejects_different_bins(self):
        with pytest.raises(ValueError):
            self._acc(bins=8).merge(self._acc(bins=8, postprocess="cut"))

    def test_merge_rejects_plain_frequency_accumulator(self):
        # Same oracle shape (k=8, same eps) but a different protocol:
        # must not silently fold frequency state into a histogram.
        freq = Protocol.frequency(1.0, domain=8, oracle="oue").server()
        with pytest.raises(ValueError):
            self._acc(bins=8).merge(freq)

    def test_estimate_is_probability_vector(self, rng):
        protocol = Protocol.histogram(1.0, bins=8)
        values = rng.uniform(-1, 1, 20_000)
        est = protocol.run(values, rng)
        assert est.histogram.shape == (8,)
        assert est.histogram.min() >= 0.0
        assert est.histogram.sum() == pytest.approx(1.0)


class TestMixedAccumulatorSchemaChecks:
    def test_absorb_rejects_unknown_categorical_attribute(self, rng):
        from repro.data.schema import (
            CategoricalAttribute,
            Dataset,
            NumericAttribute,
            Schema,
        )
        from repro.multidim import MixedMultidimCollector

        schema_a = Schema([NumericAttribute("x"), CategoricalAttribute("c", 4)])
        schema_b = Schema([NumericAttribute("x"), CategoricalAttribute("z", 4)])
        ds_b = Dataset(
            schema=schema_b,
            columns={
                "x": rng.uniform(-1, 1, 200),
                "z": rng.integers(0, 4, 200),
            },
        )
        reports_b = MixedMultidimCollector(schema_b, 2.0).privatize(ds_b, rng)
        acc_a = Protocol.multidim(2.0, schema=schema_a).server()
        with pytest.raises(ValueError, match="not in this accumulator"):
            acc_a.absorb(reports_b)


class TestResolvedK:
    def test_multidim_exposes_resolved_k(self):
        protocol = Protocol.multidim(4.0, d=10, mechanism="hm")
        assert protocol.k == 1          # Eq. 12 at eps=4.0
        assert protocol.spec.k is None  # derived, not overridden
        assert Protocol.multidim(4.0, d=10, k=2).k == 2

    def test_non_multidim_kinds_have_no_k(self):
        assert Protocol.numeric_mean(1.0).k is None
        assert Protocol.frequency(1.0, domain=4).k is None


class TestMergeLaws:
    """merge() associativity / commutativity across random shard splits."""

    def _shards(self, rng, parts=4):
        protocol = Protocol.multidim(4.0, d=5, mechanism="hm")
        t = rng.uniform(-1, 1, (8_000, 5))
        reports = protocol.client().encode_batch(t, rng)
        order = rng.permutation(reports.n)
        shards = []
        for idx in np.array_split(order, parts):
            shard = SampledNumericReports(
                d=reports.d,
                k=reports.k,
                cols=reports.cols[idx],
                values=reports.values[idx],
            )
            shards.append(protocol.server().absorb(shard))
        return protocol, shards

    def test_commutative(self, rng):
        protocol, shards = self._shards(rng, parts=2)
        a, b = shards
        ab = protocol.server().merge(a).merge(b).estimate()
        ba = protocol.server().merge(b).merge(a).estimate()
        assert np.allclose(ab, ba, atol=1e-12)

    def test_associative(self, rng):
        protocol, shards = self._shards(rng, parts=3)
        a, b, c = shards

        def fresh(acc):
            clone = protocol.server()
            return clone.merge(acc)

        left = fresh(a).merge(b).merge(c).estimate()
        right_inner = fresh(b).merge(c)
        right = fresh(a).merge(right_inner).estimate()
        assert np.allclose(left, right, atol=1e-12)
