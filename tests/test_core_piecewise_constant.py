"""Tests for the SCDF and Staircase piecewise-constant noise mechanisms."""

import math

import numpy as np
import pytest

from repro.core import SCDFMechanism, StaircaseMechanism

MECHS = (SCDFMechanism, StaircaseMechanism)


class TestParameters:
    def test_scdf_plateau_density_is_eps_over_4(self, epsilon):
        assert SCDFMechanism(epsilon).a == pytest.approx(epsilon / 4.0)

    def test_staircase_plateau_width(self, epsilon):
        mech = StaircaseMechanism(epsilon)
        assert mech.m == pytest.approx(2.0 / (1.0 + math.exp(epsilon / 2.0)))

    @pytest.mark.parametrize("cls", MECHS)
    def test_plateau_parameters_positive(self, cls, epsilon):
        mech = cls(epsilon)
        assert mech.m > 0.0
        assert mech.a > 0.0

    @pytest.mark.parametrize("cls", MECHS)
    def test_constructor_checks_normalization(self, cls, epsilon):
        # Normalization is asserted inside __init__; constructing at all
        # certifies total probability mass 1.
        cls(epsilon)


class TestPdf:
    @pytest.mark.parametrize("cls", MECHS)
    def test_pdf_integrates_to_one(self, cls):
        mech = cls(1.0)
        x = np.linspace(-80, 80, 1_600_001)
        mass = np.trapezoid(mech.pdf(x, 0.0), x)
        assert mass == pytest.approx(1.0, abs=1e-3)

    @pytest.mark.parametrize("cls", MECHS)
    def test_pdf_plateau_height(self, cls):
        mech = cls(1.0)
        assert float(mech.pdf(0.0, 0.0)) == pytest.approx(mech.a)

    @pytest.mark.parametrize("cls", MECHS)
    def test_pdf_steps_decay_by_e_eps(self, cls, epsilon):
        mech = cls(epsilon)
        first_step = float(mech.pdf(mech.m + 1.0, 0.0))
        second_step = float(mech.pdf(mech.m + 3.0, 0.0))
        assert first_step / second_step == pytest.approx(math.exp(epsilon))

    @pytest.mark.parametrize("cls", MECHS)
    def test_ldp_density_ratio_bounded(self, cls, epsilon):
        """Additive noise with step width = sensitivity 2 gives eps-LDP."""
        mech = cls(epsilon)
        x = np.linspace(-15, 15, 3001)
        for t, t_prime in ((-1.0, 1.0), (0.0, 1.0), (-0.5, 0.5)):
            ratio = mech.pdf(x, t) / mech.pdf(x, t_prime)
            assert ratio.max() <= math.exp(epsilon) * (1 + 1e-9)


class TestVariance:
    @pytest.mark.parametrize("cls", MECHS)
    def test_empirical_matches_series(self, cls, rng):
        mech = cls(1.0)
        noise = mech.sample_noise(300_000, rng)
        assert np.var(noise) == pytest.approx(mech.noise_variance(), rel=0.05)

    @pytest.mark.parametrize("cls", MECHS)
    def test_variance_decreasing_in_epsilon(self, cls):
        variances = [cls(e).noise_variance() for e in (0.5, 1.0, 2.0, 4.0)]
        assert variances == sorted(variances, reverse=True)

    def test_scdf_close_to_laplace_at_small_eps(self):
        # Both mechanisms converge to similar noise levels as eps -> 0.
        assert SCDFMechanism(0.1).noise_variance() == pytest.approx(
            8.0 / 0.1**2, rel=0.05
        )

    @pytest.mark.parametrize("cls", MECHS)
    def test_beats_laplace_at_large_eps(self, cls):
        # The whole point of the optimized noise: smaller variance than
        # Laplace's 8/eps^2 once eps is moderately large.
        assert cls(4.0).noise_variance() < 8.0 / 16.0


class TestSampling:
    @pytest.mark.parametrize("cls", MECHS)
    def test_noise_symmetric(self, cls, rng):
        noise = cls(1.0).sample_noise(200_000, rng)
        assert abs(np.mean(noise)) < 0.05

    @pytest.mark.parametrize("cls", MECHS)
    def test_center_mass_fraction(self, cls, rng):
        mech = cls(1.0)
        noise = mech.sample_noise(200_000, rng)
        frac = np.mean(np.abs(noise) <= mech.m)
        assert frac == pytest.approx(2.0 * mech.m * mech.a, abs=0.01)

    @pytest.mark.parametrize("cls", MECHS)
    def test_shape_passthrough(self, cls, rng):
        assert cls(1.0).sample_noise((3, 4), rng).shape == (3, 4)
