"""Regression tests for the dense-grid worst-case variance fallback.

The base-class default used to evaluate variance only at t in {-1, 0, 1},
which silently under-reports the worst case for any mechanism whose
variance peaks at an interior point.  The fallback now scans a dense
grid; these tests pin both the fix and its agreement with every closed
form in the package.
"""

import numpy as np
import pytest

from repro.core.mechanism import (
    NumericMechanism,
    available_mechanisms,
    get_mechanism,
    variance_grid,
)
from repro.multidim import MultidimNumericCollector


class _InteriorPeakMechanism(NumericMechanism):
    """Variance 1 at t in {-1, 0, 1} but 2 at |t| = 1/2.

    A stand-in for mixtures/ablations whose variance is not monotone in
    |t|; never sampled, only analyzed.
    """

    name = "interior-peak-test"

    def privatize(self, values, rng=None):  # pragma: no cover - unused
        return np.asarray(values, dtype=float)

    def variance(self, t):
        t = np.asarray(t, dtype=float)
        return 1.0 + (1.0 - (2.0 * np.abs(t) - 1.0) ** 2)


class TestDenseGridFallback:
    def test_grid_contains_anchor_points(self):
        grid = variance_grid()
        for anchor in (-1.0, -0.5, 0.0, 0.5, 1.0):
            assert anchor in grid

    def test_interior_peak_found(self):
        mech = _InteriorPeakMechanism(epsilon=1.0)
        # The old endpoints-only evaluation would have returned 1.0.
        assert mech.worst_case_variance() == pytest.approx(2.0)

    @pytest.mark.parametrize("name", sorted(available_mechanisms()))
    def test_fallback_matches_closed_forms(self, name, epsilon):
        """Dense-grid search agrees with every subclass closed form."""
        mech = get_mechanism(name, epsilon)
        grid_value = NumericMechanism.worst_case_variance(mech)
        closed_form = mech.worst_case_variance()
        assert grid_value == pytest.approx(closed_form, rel=1e-9)

    def test_hybrid_custom_alpha_uses_grid(self):
        # A suboptimal alpha falls back to the grid search; the result
        # must dominate the variance at every anchor point.
        mech = get_mechanism("hm", 1.0, alpha=0.3)
        wcv = mech.worst_case_variance()
        assert wcv >= float(np.max(mech.variance(np.array([-1.0, 0.0, 1.0]))))


class TestCollectorWorstCase:
    def test_collector_grid_consistent_with_per_coordinate(self):
        collector = MultidimNumericCollector(4.0, 8, "hm")
        expected = float(
            np.max(collector.per_coordinate_variance(variance_grid()))
        )
        assert collector.worst_case_variance() == pytest.approx(expected)

    def test_generic_fallback_branch(self):
        # A non-pm/hm mechanism exercises the first-principles branch.
        collector = MultidimNumericCollector(2.0, 4, "duchi", k=1)
        wcv = collector.worst_case_variance()
        var_at_zero = float(
            collector.per_coordinate_variance(np.array([0.0]))[0]
        )
        assert wcv == pytest.approx(var_at_zero)
