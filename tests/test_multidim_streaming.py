"""Tests for the streaming aggregators."""

import numpy as np
import pytest

from repro.data.schema import (
    CategoricalAttribute,
    Dataset,
    NumericAttribute,
    Schema,
)
from repro.frequency import OptimizedUnaryEncoding
from repro.multidim import (
    MixedMultidimCollector,
    MultidimNumericCollector,
    StreamingFrequencyAggregator,
    StreamingMeanAggregator,
    StreamingMixedAggregator,
)


class TestStreamingMean:
    def test_matches_batch_exactly(self, rng):
        collector = MultidimNumericCollector(2.0, 5, "hm")
        t = rng.uniform(-1, 1, (12_000, 5))
        reports = collector.privatize(t, rng)
        batch_estimate = collector.estimate_means(reports)

        stream = StreamingMeanAggregator(5)
        for chunk in np.array_split(reports, 7):
            stream.update(chunk)
        assert np.allclose(stream.estimates(), batch_estimate)
        assert stream.count == 12_000

    def test_single_row_update(self):
        stream = StreamingMeanAggregator(3)
        stream.update(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(stream.estimates(), [1.0, 2.0, 3.0])

    def test_no_reports_raises(self):
        with pytest.raises(ValueError):
            StreamingMeanAggregator(3).estimates()

    def test_wrong_width_rejected(self):
        stream = StreamingMeanAggregator(3)
        with pytest.raises(ValueError):
            stream.update(np.zeros((5, 4)))

    def test_bad_d(self):
        with pytest.raises(ValueError):
            StreamingMeanAggregator(0)

    def test_merge_equals_combined(self, rng):
        a_data = rng.normal(0, 1, (100, 4))
        b_data = rng.normal(0, 1, (50, 4))
        merged = (
            StreamingMeanAggregator(4)
            .update(a_data)
            .merge(StreamingMeanAggregator(4).update(b_data))
        )
        combined = StreamingMeanAggregator(4).update(
            np.vstack([a_data, b_data])
        )
        assert np.allclose(merged.estimates(), combined.estimates())

    def test_merge_dimension_mismatch(self):
        with pytest.raises(ValueError):
            StreamingMeanAggregator(3).merge(StreamingMeanAggregator(4))


class TestStreamingFrequency:
    def test_matches_batch_exactly(self, rng):
        oracle = OptimizedUnaryEncoding(1.0, 4)
        values = rng.integers(0, 4, 8_000)
        reports = oracle.privatize(values, rng)
        batch = oracle.estimate_frequencies(reports)

        stream = StreamingFrequencyAggregator(oracle)
        for chunk in np.array_split(reports, 5):
            stream.update(chunk)
        assert np.allclose(stream.estimates(), batch)

    def test_no_reports_raises(self):
        oracle = OptimizedUnaryEncoding(1.0, 4)
        with pytest.raises(ValueError):
            StreamingFrequencyAggregator(oracle).estimates()

    def test_merge(self, rng):
        oracle = OptimizedUnaryEncoding(1.0, 4)
        values = rng.integers(0, 4, 6_000)
        reports = oracle.privatize(values, rng)
        half = len(values) // 2
        merged = (
            StreamingFrequencyAggregator(oracle)
            .update(reports[:half])
            .merge(
                StreamingFrequencyAggregator(oracle).update(reports[half:])
            )
        )
        assert np.allclose(
            merged.estimates(), oracle.estimate_frequencies(reports)
        )

    def test_merge_domain_mismatch(self):
        a = StreamingFrequencyAggregator(OptimizedUnaryEncoding(1.0, 4))
        b = StreamingFrequencyAggregator(OptimizedUnaryEncoding(1.0, 5))
        with pytest.raises(ValueError):
            a.merge(b)


def _dataset(n, rng):
    schema = Schema(
        [
            NumericAttribute("x"),
            CategoricalAttribute("c", 4),
        ]
    )
    return Dataset(
        schema=schema,
        columns={
            "x": rng.uniform(-1, 1, n),
            "c": rng.integers(0, 4, n),
        },
    )


class TestStreamingMixed:
    def test_matches_batch_path(self, rng):
        ds = _dataset(20_000, rng)
        collector = MixedMultidimCollector(ds.schema, 2.0)
        stream = StreamingMixedAggregator(collector)

        batches = [ds.subset(idx) for idx in np.array_split(np.arange(ds.n), 4)]
        all_reports = []
        for batch in batches:
            reports = collector.privatize(batch, rng)
            all_reports.append(reports)
            stream.update(reports)

        streamed = stream.estimates()
        assert stream.users == ds.n
        # Mean estimates: averaging per-batch sums equals global average.
        combined_numeric = np.vstack([r.numeric for r in all_reports])
        assert streamed.means["x"] == pytest.approx(
            float(combined_numeric.mean(axis=0)[0])
        )
        assert streamed.frequencies["c"].shape == (4,)

    def test_estimates_close_to_truth(self, rng):
        ds = _dataset(60_000, rng)
        collector = MixedMultidimCollector(ds.schema, 2.0)
        stream = StreamingMixedAggregator(collector)
        for idx in np.array_split(np.arange(ds.n), 6):
            stream.update(collector.privatize(ds.subset(idx), rng))
        estimates = stream.estimates()
        assert estimates.mean_mse(ds.true_numeric_means()) < 0.01
        assert estimates.frequency_mse(ds.true_categorical_frequencies()) < 0.01

    def test_no_reports_raises(self, rng):
        ds = _dataset(10, rng)
        stream = StreamingMixedAggregator(
            MixedMultidimCollector(ds.schema, 1.0)
        )
        with pytest.raises(ValueError):
            stream.estimates()
