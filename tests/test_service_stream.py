"""End-to-end streaming tests over the live HTTP service: windowed
campaigns (sliding-window estimates bitwise-equal to recomputation,
across shard counts and kill-and-resume), memoized zero-cost
re-reports against the cross-campaign ledger, the /heavy-hitters
endpoint, and v1 / window-unaware compatibility."""

import numpy as np
import pytest

from repro.protocol import Protocol
from repro.service import (
    IngestionServer,
    ServiceClient,
    ServiceError,
    SnapshotStore,
)
from repro.stream import WindowConfig

SEED = 99


@pytest.fixture
def serve():
    running = []

    def _boot(*args, **kwargs):
        server = IngestionServer(*args, **kwargs).run_in_thread()
        running.append(server)
        return server

    yield _boot
    for server in running:
        server.stop()


def _users(n, prefix="u"):
    return [f"{prefix}{i}" for i in range(n)]


def _frequency():
    return Protocol.frequency(1.0, domain=10, oracle="oue")


def _round_batches(protocol, rounds, n=40, domain=10):
    """Pre-encoded (reports, users) per round, deterministic."""
    encoder = protocol.client()
    batches = []
    for r in range(rounds):
        values = np.random.default_rng(r).integers(0, domain, n)
        reports = encoder.encode_batch(values, np.random.default_rng(100 + r))
        batches.append((reports, _users(n, prefix=f"r{r}-")))
    return batches


class TestWindowedEstimates:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_window_estimate_bitwise_across_shards(self, serve, shards):
        protocol = _frequency()
        server = serve(protocol, shards=shards, window={"panes": 3})
        client = ServiceClient("127.0.0.1", server.port)
        batches = _round_batches(protocol, rounds=5)
        for r, (reports, users) in enumerate(batches):
            client.submit_reports(reports, users, round=r)

        # The window view must be bitwise-equal to a fresh accumulator
        # absorbing ONLY the in-window rounds' reports (rounds 2..4 for
        # a 3-pane window whose latest round is 4).
        fresh = protocol.server()
        for reports, _ in batches[2:]:
            fresh.absorb(reports)
        windowed = client.estimate_info(window=3)
        np.testing.assert_array_equal(
            np.asarray(windowed["estimate"]), np.asarray(fresh.estimate())
        )
        assert windowed["reports"] == 3 * 40
        assert windowed["final"] is False
        assert windowed["window"]["panes"] == 3
        assert windowed["window"]["latest_round"] == 4

        # A narrower window, same contract.
        narrow = protocol.server()
        narrow.absorb(batches[4][0])
        np.testing.assert_array_equal(
            np.asarray(client.estimate(window=1)),
            np.asarray(narrow.estimate()),
        )

        # The all-time estimate still covers every report, including
        # the rounds whose panes were evicted from the ring.
        all_time = protocol.server()
        for reports, _ in batches:
            all_time.absorb(reports)
        np.testing.assert_array_equal(
            np.asarray(client.estimate()), np.asarray(all_time.estimate())
        )

    def test_kill_and_resume_windowed_bitwise(self, serve, tmp_path):
        protocol = _frequency()
        batches = _round_batches(protocol, rounds=5)
        boot = dict(
            shards=2,
            window={"panes": 3},
            checkpoint_every=1,
        )
        server = serve(protocol, store=SnapshotStore(tmp_path), **boot)
        client = ServiceClient("127.0.0.1", server.port)
        for r, (reports, users) in enumerate(batches[:3]):
            client.submit_reports(reports, users, round=r)
        server.stop()  # crash-equivalent: no drain, resume from disk

        resumed = serve(protocol, store=SnapshotStore(tmp_path), **boot)
        client2 = ServiceClient("127.0.0.1", resumed.port)
        for r, (reports, users) in enumerate(batches[3:], start=3):
            client2.submit_reports(reports, users, round=r)

        fresh = protocol.server()
        for reports, _ in batches[2:]:
            fresh.absorb(reports)
        np.testing.assert_array_equal(
            np.asarray(client2.estimate(window=3)),
            np.asarray(fresh.estimate()),
        )
        all_time = protocol.server()
        for reports, _ in batches:
            all_time.absorb(reports)
        np.testing.assert_array_equal(
            np.asarray(client2.estimate()),
            np.asarray(all_time.estimate()),
        )

    def test_duration_window_resolves_via_pane_seconds(self, serve):
        protocol = _frequency()
        server = serve(
            protocol, window={"panes": 4, "pane_seconds": 60.0}
        )
        client = ServiceClient("127.0.0.1", server.port)
        batches = _round_batches(protocol, rounds=4)
        for r, (reports, users) in enumerate(batches):
            client.submit_reports(reports, users, round=r)
        fresh = protocol.server()
        for reports, _ in batches[2:]:  # "2m" / 60s panes -> 2 panes
            fresh.absorb(reports)
        np.testing.assert_array_equal(
            np.asarray(client.estimate(window="2m")),
            np.asarray(fresh.estimate()),
        )

    def test_decayed_estimate_over_http(self, serve):
        protocol = Protocol.numeric_mean(2.0, mechanism="pm")
        server = serve(protocol, window={"panes": 4})
        client = ServiceClient("127.0.0.1", server.port)
        encoder = protocol.client()
        rng = np.random.default_rng(3)
        for r in range(2):
            reports = encoder.encode_batch(
                rng.uniform(-1, 1, 50), np.random.default_rng(200 + r)
            )
            client.submit_reports(reports, _users(50, f"r{r}-"), round=r)
        decayed = client.estimate_info(window=4, decay=0.5)
        assert decayed["window"]["decay"] == 0.5
        # decay=1.0 degenerates to the plain window merge.
        np.testing.assert_allclose(
            client.estimate(window=4, decay=1.0),
            client.estimate(window=4),
        )

    def test_plain_campaign_rejects_window_query(self, serve):
        server = serve(_frequency())
        client = ServiceClient("127.0.0.1", server.port)
        client.submit(
            np.arange(40) % 10, users=_users(40), rng=SEED
        )
        with pytest.raises(ServiceError) as excinfo:
            client.estimate(window=2)
        assert excinfo.value.status == 409
        assert excinfo.value.payload["error"] == "not_windowed"

    def test_bad_window_values_are_400(self, serve):
        server = serve(_frequency(), window={"panes": 3})
        client = ServiceClient("127.0.0.1", server.port)
        client.submit(
            np.arange(40) % 10, users=_users(40), rng=SEED, round=0
        )
        with pytest.raises(ServiceError) as excinfo:
            client.estimate(window="bogus")
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            # Duration windows need pane_seconds on the campaign.
            client.estimate(window="5m")
        assert excinfo.value.status == 400

    def test_empty_window_is_409_no_reports(self, serve):
        server = serve(_frequency(), window={"panes": 2})
        client = ServiceClient("127.0.0.1", server.port)
        client.submit(
            np.arange(40) % 10, users=_users(40), rng=SEED, round=0
        )
        client.submit(
            np.arange(40) % 10, users=_users(40, "v"), rng=SEED + 1, round=5
        )
        # Rounds 0..4 fell out of the 2-pane ring; round 5 is live —
        # but a 1-pane window over round 5 only is fine, whereas the
        # all-time estimate still covers everything.
        info = client.estimate_info()
        assert info["reports"] == 80

    def test_window_gauges_exposed(self, serve):
        server = serve(_frequency(), window={"panes": 3})
        client = ServiceClient("127.0.0.1", server.port)
        client.submit(
            np.arange(40) % 10, users=_users(40), rng=SEED, round=7
        )
        fp = server.registry.default.fingerprint
        text = client.server_metrics_text()
        assert (
            f'repro_campaign_window_latest_round{{campaign="{fp}"}} 7'
            in text
        )
        assert (
            f'repro_campaign_window_live_panes{{campaign="{fp}"}} 1'
            in text
        )
        assert (
            f'repro_campaign_window_reports{{campaign="{fp}"}} 40' in text
        )


class TestMemoizedSubmission:
    @pytest.mark.parametrize("wire_version", [None, 1])
    def test_unchanged_resubmission_charges_zero_epsilon(
        self, serve, wire_version
    ):
        protocol = _frequency()
        server = serve(protocol, window={"panes": 4})
        client = ServiceClient(
            "127.0.0.1",
            server.port,
            memoize=True,
            wire_version=wire_version,
        )
        values = np.arange(30) % 10
        users = _users(30)
        client.submit(values, users=users, rng=SEED, round=0)
        spent_after_round_1 = {u: server.ledger.spent(u) for u in users}
        assert all(v == 1.0 for v in spent_after_round_1.values())

        # Round 2, same values: the cached reports replay, every user
        # is marked not-fresh, and the ledger does not move at all.
        response = client.submit(values, users=users, rng=SEED + 1, round=1)
        assert response["accepted"] == 30
        for u in users:
            assert server.ledger.spent(u) == spent_after_round_1[u]

        # ...but the reports DID land: both panes hold the batch.
        info = client.estimate_info(window=4)
        assert info["reports"] == 60

    def test_only_changed_users_are_charged(self, serve):
        protocol = _frequency()
        server = serve(protocol, window={"panes": 4}, lifetime_epsilon=4.0)
        client = ServiceClient("127.0.0.1", server.port, memoize=True)
        users = _users(4)
        client.submit([0, 1, 2, 3], users=users, rng=SEED, round=0)
        client.submit([0, 9, 2, 8], users=users, rng=SEED + 1, round=1)
        assert server.ledger.spent("u0") == 1.0
        assert server.ledger.spent("u2") == 1.0
        assert server.ledger.spent("u1") == 2.0
        assert server.ledger.spent("u3") == 2.0

    def test_memoized_rounds_keep_estimates_valid(self, serve):
        protocol = _frequency()
        server = serve(protocol, window={"panes": 2})
        client = ServiceClient("127.0.0.1", server.port, memoize=True)
        values = np.random.default_rng(5).integers(0, 10, 60)
        users = _users(60)
        client.submit(values, users=users, rng=SEED, round=0)
        round_one = np.asarray(client.estimate(window=1))
        client.submit(values, users=users, rng=SEED + 1, round=1)
        # The replayed pane is byte-identical, so the 1-pane estimate
        # is unchanged from round 0's.
        np.testing.assert_array_equal(
            np.asarray(client.estimate(window=1)), round_one
        )

    def test_budget_rejection_ignores_replayed_users(self, serve):
        protocol = Protocol.frequency(1.0, domain=10, oracle="oue")
        server = serve(
            protocol, window={"panes": 8}, lifetime_epsilon=1.5
        )
        client = ServiceClient("127.0.0.1", server.port, memoize=True)
        users = _users(10)
        values = np.arange(10)
        client.submit(values, users=users, rng=SEED, round=0)
        # Every user has spent 1.0 of 1.5: a FRESH batch would be
        # rejected, an all-replayed batch sails through free.
        response = client.submit(values, users=users, rng=SEED + 1, round=1)
        assert response["accepted"] == 10


class TestHeavyHitters:
    def test_churn_between_rounds_over_http(self, serve):
        protocol = Protocol.frequency(8.0, domain=6, oracle="grr")
        server = serve(protocol, shards=2, window={"panes": 2})
        client = ServiceClient("127.0.0.1", server.port)
        encoder = protocol.client()

        hot = np.array([0, 1] * 100)
        reports = encoder.encode_batch(hot, np.random.default_rng(1))
        client.submit_reports(reports, _users(200, "a"), round=0)
        first = client.heavy_hitters(k=2, window=1)
        assert sorted(first["indices"]) == [0, 1]
        assert first["entered"] == [] and first["exited"] == []
        assert first["round"] == 0

        shifted = np.array([4, 5] * 100)
        reports = encoder.encode_batch(shifted, np.random.default_rng(2))
        client.submit_reports(reports, _users(200, "b"), round=1)
        second = client.heavy_hitters(k=2, window=1)
        assert second["round"] == 1
        assert sorted(second["indices"]) == [4, 5]
        assert sorted(second["entered"]) == [4, 5]
        assert sorted(second["exited"]) == [0, 1]

    def test_plain_campaign_ranks_all_time(self, serve):
        server = serve(Protocol.frequency(8.0, domain=6, oracle="grr"))
        client = ServiceClient("127.0.0.1", server.port)
        client.submit(
            np.array([3] * 120 + [5] * 60), users=_users(180), rng=SEED
        )
        top = client.heavy_hitters(k=2)
        assert top["indices"][0] == 3
        assert top["round"] is None
        with pytest.raises(ServiceError) as excinfo:
            client.heavy_hitters(k=2, window=1)
        assert excinfo.value.status == 409
        assert excinfo.value.payload["error"] == "not_windowed"

    def test_non_frequency_campaign_is_409(self, serve):
        server = serve(
            Protocol.numeric_mean(1.0, mechanism="pm"),
            window={"panes": 2},
        )
        client = ServiceClient("127.0.0.1", server.port)
        client.submit(
            np.random.default_rng(0).uniform(-1, 1, 40),
            users=_users(40),
            rng=SEED,
            round=0,
        )
        with pytest.raises(ServiceError) as excinfo:
            client.heavy_hitters(k=3)
        assert excinfo.value.status == 409
        assert excinfo.value.payload["error"] == "not_frequency"

    def test_no_reports_is_409(self, serve):
        server = serve(_frequency(), window={"panes": 2})
        client = ServiceClient("127.0.0.1", server.port)
        with pytest.raises(ServiceError) as excinfo:
            client.heavy_hitters()
        assert excinfo.value.status == 409
        assert excinfo.value.payload["error"] == "no_reports"

    def test_bad_k_is_400(self, serve):
        server = serve(_frequency(), window={"panes": 2})
        client = ServiceClient("127.0.0.1", server.port)
        with pytest.raises(ServiceError) as excinfo:
            client.heavy_hitters(k=0)
        assert excinfo.value.status == 400


class TestCompatibility:
    def test_window_unaware_client_on_windowed_server(self, serve):
        """A pre-streaming submission (no round, no fresh) lands in the
        current pane and every all-time query works unchanged."""
        protocol = _frequency()
        server = serve(protocol, window={"panes": 3})
        client = ServiceClient("127.0.0.1", server.port)
        values = np.arange(40) % 10
        client.submit(values, users=_users(40), rng=SEED)
        info = client.estimate_info()
        assert info["reports"] == 40
        assert info["final"] is False

    def test_roundless_idempotency_key_is_unchanged(self):
        """The streaming keys must not perturb the v1 key derivation —
        mixed fleets (old and new SDKs) agree on duplicate detection."""
        encoded = {"dtype": "<i8", "data": [1, 2, 3]}
        users = ["a", "b", "c"]
        base = ServiceClient._derive_key(encoded, users)
        assert ServiceClient._derive_key(encoded, users, None, None) == base
        assert ServiceClient._derive_key(encoded, users, 0, None) != base
        assert (
            ServiceClient._derive_key(encoded, users, None, [True] * 3)
            != base
        )

    def test_duplicate_detection_still_works_with_rounds(self, serve):
        protocol = _frequency()
        server = serve(protocol, window={"panes": 3}, lifetime_epsilon=4.0)
        client = ServiceClient("127.0.0.1", server.port)
        encoder = protocol.client()
        reports = encoder.encode_batch(
            np.arange(40) % 10, np.random.default_rng(0)
        )
        users = _users(40)
        first = client.submit_reports(reports, users, round=2)
        again = client.submit_reports(reports, users, round=2)
        assert first["status"] == "accepted"
        assert again["status"] == "duplicate"
        # The same bytes into a DIFFERENT round are a new pane's worth
        # of evidence, not a duplicate.
        other = client.submit_reports(reports, users, round=3)
        assert other["status"] == "accepted"

    def test_bad_round_and_fresh_are_400(self, serve):
        protocol = _frequency()
        server = serve(protocol, window={"panes": 3})
        client = ServiceClient("127.0.0.1", server.port)
        encoder = protocol.client()
        reports = encoder.encode_batch(
            np.arange(10) % 10, np.random.default_rng(0)
        )
        with pytest.raises(ServiceError) as excinfo:
            client.submit_reports(reports, _users(10), round=-1)
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.submit_reports(
                reports, _users(10), fresh=[True] * 9
            )
        assert excinfo.value.status == 400

    def test_window_conflict_on_reregister_is_409(self, serve):
        protocol = _frequency()
        server = serve(protocol, window={"panes": 3})
        client = ServiceClient("127.0.0.1", server.port)
        spec = protocol.spec.to_dict()
        # Window-unaware re-register keeps the existing window.
        same = client.register_campaign(spec)
        assert same["created"] is False
        # Agreeing window: still idempotent.
        agree = client.register_campaign(
            spec, window={"panes": 3, "pane_seconds": None, "decay": None}
        )
        assert agree["created"] is False
        with pytest.raises(ServiceError) as excinfo:
            client.register_campaign(spec, window={"panes": 5})
        assert excinfo.value.status == 409
        assert excinfo.value.payload["error"] == "window_conflict"

    def test_registered_windowed_campaign_round_trip(self, serve):
        """POST /campaigns with a window, then stream into it."""
        server = serve(_frequency(), lifetime_epsilon=4.0)
        client = ServiceClient("127.0.0.1", server.port)
        spec = Protocol.frequency(2.0, domain=4, oracle="grr").spec
        registered = client.register_campaign(
            spec, window={"panes": 2}
        )
        bound = client.for_campaign(registered["campaign"])
        assert bound.fetch_spec()["window"]["panes"] == 2
        bound.submit(
            np.arange(20) % 4, users=_users(20), rng=SEED, round=0
        )
        assert bound.estimate_info(window=1)["reports"] == 20
