"""Tests for the sample-size / budget planner."""

import pytest

from repro.analysis.planner import (
    compare_mechanisms,
    required_epsilon,
    required_users,
    worst_case_variance,
)
from repro.theory.variance import hm_md_worst_variance, hm_worst_variance


class TestWorstCaseVariance:
    def test_dispatch_1d(self):
        assert worst_case_variance(1.0, "hm") == pytest.approx(
            hm_worst_variance(1.0)
        )

    def test_dispatch_md(self):
        assert worst_case_variance(1.0, "hm", d=8) == pytest.approx(
            hm_md_worst_variance(1.0, 8)
        )

    def test_unknown_mechanism(self):
        with pytest.raises(ValueError):
            worst_case_variance(1.0, "exponential")
        with pytest.raises(ValueError):
            worst_case_variance(1.0, "laplace", d=4)  # no multi-d laplace


class TestRequiredUsers:
    def test_tighter_target_needs_more_users(self):
        loose = required_users(1.0, 0.05).required_n
        tight = required_users(1.0, 0.01).required_n
        assert tight > loose
        # Quadratic scaling in the target error.
        assert tight == pytest.approx(25 * loose, rel=0.01)

    def test_more_budget_needs_fewer_users(self):
        assert (
            required_users(4.0, 0.01).required_n
            < required_users(0.5, 0.01).required_n
        )

    def test_hm_needs_fewest_users_1d_large_eps(self):
        plans = compare_mechanisms(4.0, 0.01)
        assert plans["hm"].required_n == min(
            p.required_n for p in plans.values()
        )

    def test_md_ordering_matches_corollary2(self):
        plans = compare_mechanisms(2.0, 0.05, d=10)
        assert (
            plans["hm"].required_n
            < plans["pm"].required_n
            < plans["duchi"].required_n
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            required_users(1.0, 0.0)
        with pytest.raises(ValueError):
            required_users(1.0, 0.01, beta=1.5)

    def test_plan_fields(self):
        plan = required_users(2.0, 0.02, "pm", d=4, beta=0.1)
        assert plan.mechanism == "pm"
        assert plan.d == 4
        assert plan.required_n >= 1


class TestRequiredEpsilon:
    def test_roundtrip_with_required_users(self):
        """required_epsilon inverts required_users (within bisection
        tolerance): planning n users at the returned eps meets the target."""
        target, beta = 0.02, 0.05
        n = required_users(1.0, target, "hm", beta=beta).required_n
        eps = required_epsilon(n, target, "hm", beta=beta)
        assert eps <= 1.0 + 1e-6
        # And the eps found indeed achieves the target with those users.
        assert required_users(eps, target, "hm", beta=beta).required_n <= n

    def test_more_users_need_less_budget(self):
        assert required_epsilon(100_000, 0.01) < required_epsilon(
            10_000, 0.01
        )

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError, match="unreachable"):
            required_epsilon(10, 1e-6)

    def test_bad_n(self):
        with pytest.raises(ValueError):
            required_epsilon(0, 0.01)
