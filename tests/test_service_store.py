"""SnapshotStore tests: atomicity, pruning, recovery ordering."""

import json

import numpy as np
import pytest

from repro.protocol import Protocol
from repro.service import wire
from repro.service.store import SnapshotStore


class TestSnapshotStore:
    def test_save_load_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path)
        payload = {"fingerprint": "abc", "value": [1, 2, 3]}
        path = store.save(4, payload)
        assert path.exists()
        loaded = store.load(4)
        assert loaded["seq"] == 4
        assert loaded["value"] == [1, 2, 3]

    def test_latest_picks_highest_sequence(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=10)
        for seq in (1, 5, 3):
            store.save(seq, {"marker": seq})
        assert store.latest_sequence() == 5
        seq, payload = store.load_latest()
        assert seq == 5 and payload["marker"] == 5

    def test_empty_store(self, tmp_path):
        store = SnapshotStore(tmp_path)
        assert store.latest_sequence() is None
        assert store.load_latest() is None

    def test_prunes_to_keep(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        for seq in range(5):
            store.save(seq, {})
        assert store.sequences() == [3, 4]

    def test_no_partial_snapshot_visible(self, tmp_path):
        """A leftover .tmp from a crashed write is never read."""
        store = SnapshotStore(tmp_path)
        store.save(1, {"ok": True})
        # Simulate a crash mid-write of snapshot 2.
        (tmp_path / "snapshot-0000000002.tmp").write_text('{"seq": 2, "tru')
        assert store.sequences() == [1]
        assert store.load_latest()[0] == 1
        # The next save of seq 2 overwrites the junk and completes.
        store.save(2, {"ok": True})
        assert store.load(2)["ok"] is True

    def test_saved_file_is_complete_json(self, tmp_path):
        store = SnapshotStore(tmp_path)
        path = store.save(7, {"blob": "x" * 100_000})
        assert json.loads(path.read_text())["blob"] == "x" * 100_000

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotStore(tmp_path, keep=0)
        store = SnapshotStore(tmp_path)
        with pytest.raises(ValueError):
            store.save(-1, {})

    def test_creates_directory(self, tmp_path):
        nested = tmp_path / "a" / "b"
        SnapshotStore(nested).save(0, {})
        assert nested.exists()


class TestResumeEquality:
    """Resume-from-snapshot is bitwise-equal to an uninterrupted run."""

    @pytest.mark.parametrize(
        "factory, values_of",
        [
            (
                lambda: Protocol.frequency(1.0, domain=16),
                lambda rng, n: rng.integers(0, 16, n),
            ),
            (
                lambda: Protocol.multidim(4.0, d=5, mechanism="hm"),
                lambda rng, n: rng.uniform(-1, 1, (n, 5)),
            ),
        ],
    )
    def test_checkpoint_resume_bitwise(self, tmp_path, factory, values_of):
        protocol = factory()
        store = SnapshotStore(tmp_path)
        encoder = protocol.client()
        rng = np.random.default_rng(0)
        batches = [
            encoder.encode_batch(
                values_of(rng, 200), np.random.default_rng(seed)
            )
            for seed in range(6)
        ]

        uninterrupted = protocol.server()
        for batch in batches:
            uninterrupted.absorb(batch)

        # First process: absorb 3 batches, checkpoint, "crash".
        first = protocol.server()
        for batch in batches[:3]:
            first.absorb(batch)
        store.save(3, {"accumulator": wire.encode_accumulator_state(first)})
        del first

        # Second process: recover from disk, absorb the rest.
        seq, snapshot = store.load_latest()
        assert seq == 3
        resumed = wire.decode_accumulator_state(
            protocol.server(),
            json.loads(json.dumps(snapshot["accumulator"])),
        )
        for batch in batches[3:]:
            resumed.absorb(batch)

        assert resumed.count == uninterrupted.count
        np.testing.assert_array_equal(
            np.asarray(resumed.estimate()),
            np.asarray(uninterrupted.estimate()),
        )
