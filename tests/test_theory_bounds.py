"""Tests for the concrete Lemma 2 / Lemma 5 error-bound helpers."""

import numpy as np
import pytest

from repro.multidim import MultidimNumericCollector
from repro.theory.bounds import (
    asymptotic_md_error,
    mean_error_bound_1d,
    mean_error_bound_md,
)
from repro.utils.rng import spawn_rngs


class TestShapes:
    def test_1d_decays_with_n(self):
        assert mean_error_bound_1d(1.0, 10_000) < mean_error_bound_1d(1.0, 100)

    def test_1d_decays_with_epsilon(self):
        assert mean_error_bound_1d(4.0, 1000) < mean_error_bound_1d(0.5, 1000)

    def test_md_grows_with_d(self):
        assert mean_error_bound_md(1.0, 20, 1000) > mean_error_bound_md(
            1.0, 5, 1000
        )

    def test_md_pm_vs_hm(self):
        # HM's worst-case variance is smaller, so its bound is tighter.
        assert mean_error_bound_md(1.0, 10, 1000, mechanism="hm") <= (
            mean_error_bound_md(1.0, 10, 1000, mechanism="pm")
        )

    def test_unknown_mechanism(self):
        with pytest.raises(ValueError):
            mean_error_bound_1d(1.0, 100, mechanism="laplace")
        with pytest.raises(ValueError):
            mean_error_bound_md(1.0, 5, 100, mechanism="laplace")

    def test_asymptotic_rate_monotonicities(self):
        base = asymptotic_md_error(1.0, 10, 10_000)
        assert asymptotic_md_error(2.0, 10, 10_000) < base
        assert asymptotic_md_error(1.0, 20, 10_000) > base
        assert asymptotic_md_error(1.0, 10, 40_000) == pytest.approx(base / 2)

    def test_asymptotic_rate_bad_n(self):
        with pytest.raises(ValueError):
            asymptotic_md_error(1.0, 10, 0)


class TestBoundHolds:
    """The Lemma 5 radius is an actual high-probability envelope: run the
    collector many times and check the max-attribute error stays inside
    the beta = 0.05 radius in >= 95%-ish of trials."""

    def test_lemma5_envelope(self):
        eps, d, n, trials = 1.0, 6, 4_000, 40
        matrix = np.zeros((n, d))  # worst case inputs for HM are moot: use 0
        collector = MultidimNumericCollector(eps, d, "hm")
        radius = mean_error_bound_md(eps, d, n, beta=0.05, mechanism="hm")
        inside = 0
        for child in spawn_rngs(123, trials):
            estimates = collector.collect(matrix, child)
            if float(np.abs(estimates).max()) <= radius:
                inside += 1
        assert inside >= int(0.9 * trials)
