"""Tests for ShardPlan: determinism, partitioning, spec round-trip."""

import numpy as np
import pytest

from repro.runtime import ShardPlan


class TestShardPartitioning:
    def test_shards_partition_the_user_range(self):
        plan = ShardPlan(n=103, num_shards=8, seed=7)
        shards = plan.shards()
        assert len(shards) == 8
        assert shards[0].start == 0
        assert shards[-1].stop == 103
        for prev, cur in zip(shards, shards[1:]):
            assert prev.stop == cur.start
        # Sizes differ by at most one, larger shards first.
        sizes = [s.size for s in shards]
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)

    def test_indices_are_merge_order(self):
        shards = ShardPlan(n=10, num_shards=3, seed=0).shards()
        assert [s.index for s in shards] == [0, 1, 2]

    def test_more_shards_than_users_gives_empty_shards(self):
        shards = ShardPlan(n=2, num_shards=5, seed=1).shards()
        assert [s.size for s in shards] == [1, 1, 0, 0, 0]

    def test_zero_users_allowed(self):
        shards = ShardPlan(n=0, num_shards=3, seed=1).shards()
        assert all(s.size == 0 for s in shards)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardPlan(n=-1, num_shards=1, seed=0)
        with pytest.raises(ValueError):
            ShardPlan(n=10, num_shards=0, seed=0)
        with pytest.raises(ValueError):
            ShardPlan(n=10, num_shards=2, seed=0, batch_size=0)


class TestShardStreams:
    def test_streams_are_deterministic(self):
        a = ShardPlan(n=100, num_shards=4, seed=42).shards()
        b = ShardPlan(n=100, num_shards=4, seed=42).shards()
        for sa, sb in zip(a, b):
            assert np.array_equal(sa.rng().random(5), sb.rng().random(5))

    def test_streams_are_independent_across_shards(self):
        shards = ShardPlan(n=100, num_shards=4, seed=42).shards()
        draws = [s.rng().random(5) for s in shards]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                assert not np.array_equal(draws[i], draws[j])

    def test_different_seed_different_streams(self):
        a = ShardPlan(n=10, num_shards=2, seed=1).shards()[0]
        b = ShardPlan(n=10, num_shards=2, seed=2).shards()[0]
        assert not np.array_equal(a.rng().random(5), b.rng().random(5))

    def test_shard_stream_does_not_depend_on_worker_count(self):
        """The plan owns the randomness; executing with any number of
        workers replays the same per-shard streams (asserted end-to-end
        in test_runtime_runner.py)."""
        plan = ShardPlan(n=100, num_shards=4, seed=9)
        first = plan.shards()[2]
        again = plan.shards()[2]
        assert np.array_equal(first.rng().random(3), again.rng().random(3))


class TestSpecRoundTrip:
    @pytest.mark.parametrize("batch_size", [None, 1000])
    def test_round_trip(self, batch_size):
        plan = ShardPlan(n=1_000_000, num_shards=16, seed=2019,
                         batch_size=batch_size)
        assert ShardPlan.from_dict(plan.to_dict()) == plan

    def test_round_trip_through_json(self):
        import json

        plan = ShardPlan(n=50, num_shards=3, seed=11, batch_size=7)
        payload = json.loads(json.dumps(plan.to_dict()))
        restored = ShardPlan.from_dict(payload)
        assert restored == plan
        # The restored plan replays identical shard streams.
        for a, b in zip(plan.shards(), restored.shards()):
            assert (a.start, a.stop) == (b.start, b.stop)
            assert np.array_equal(a.rng().random(4), b.rng().random(4))

    def test_from_rng_is_reproducible(self):
        a = ShardPlan.from_rng(100, 4, rng=5)
        b = ShardPlan.from_rng(100, 4, rng=5)
        assert a == b
        assert a.n == 100 and a.num_shards == 4
