"""End-to-end multi-campaign service tests against live servers.

The deployment story of the paper — many concurrent collections over
one user population — exercised through the real client → wire → HTTP
→ registry → ledger → accumulator path: concurrent threaded ingest
into multiple campaigns, the cross-campaign budget cap, lifecycle
(open → sealed → estimated) over HTTP, and mid-run kill-and-resume
restoring every campaign plus the ledger bitwise.
"""

import random
import threading

import numpy as np
import pytest

from repro.protocol import Protocol
from repro.service import (
    CampaignClosedError,
    IngestionServer,
    OverBudgetError,
    ServiceClient,
    ServiceError,
    SnapshotStore,
    wire,
)

SEED = 90
N = 200


def _freq_protocol(eps=1.0, domain=12):
    return Protocol.frequency(eps, domain=domain)


def _mean_protocol(eps=1.0):
    return Protocol.numeric_mean(eps, "hm")


def _users(n, prefix="u"):
    return [f"{prefix}{i}" for i in range(n)]


@pytest.fixture
def serve():
    running = []

    def _boot(*args, **kwargs):
        server = IngestionServer(*args, **kwargs).run_in_thread()
        running.append(server)
        return server

    yield _boot
    for server in running:
        server.stop()


class TestRegistrationAndRouting:
    def test_register_list_and_route(self, serve):
        server = serve(_mean_protocol(), lifetime_epsilon=4.0)
        client = ServiceClient("127.0.0.1", server.port)
        spec = _freq_protocol().spec
        response = client.register_campaign(spec)
        assert response["created"] is True
        assert response["state"] == "open"
        assert response["campaign"] == wire.spec_fingerprint(spec)
        # Idempotent by fingerprint.
        assert client.register_campaign(spec)["created"] is False

        listing = client.campaigns()
        assert len(listing) == 2
        assert listing[0]["default"] is True  # the constructor's mean
        assert {entry["kind"] for entry in listing} == {
            "mean",
            "frequency",
        }

        bound = client.for_campaign(response["campaign"])
        rng = np.random.default_rng(1)
        bound.submit(rng.integers(0, 12, 50), users=_users(50), rng=2)
        assert bound.estimate_info()["reports"] == 50

    def test_campaign_estimates_match_protocol_run_bitwise(self, serve):
        """Two concurrent campaigns over one population: each one's
        served estimate is bitwise what a single-campaign Protocol.run
        produces."""
        freq, mean = _freq_protocol(), _mean_protocol(2.0)
        rng = np.random.default_rng(7)
        freq_values = rng.integers(0, 12, N)
        mean_values = rng.uniform(-1, 1, N)
        server = serve(
            mean, lifetime_epsilon=4.0, campaigns=[freq.spec]
        )
        client = ServiceClient("127.0.0.1", server.port)
        freq_client = client.for_campaign(freq.spec)
        client.submit(mean_values, users=_users(N), rng=SEED)
        freq_client.submit(freq_values, users=_users(N), rng=SEED)
        np.testing.assert_array_equal(
            np.asarray(client.estimate()),
            np.asarray(mean.run(mean_values, rng=SEED)),
        )
        np.testing.assert_array_equal(
            np.asarray(freq_client.estimate()),
            np.asarray(freq.run(freq_values, rng=SEED)),
        )

    def test_v1_envelope_routes_to_default_campaign(self, serve):
        protocol = _mean_protocol()
        server = serve(protocol, lifetime_epsilon=2.0)
        client = ServiceClient("127.0.0.1", server.port)
        # Hand-build a campaign-less envelope (what a PR-3 SDK sends).
        reports = protocol.client().encode_batch(
            np.zeros(3), np.random.default_rng(0)
        )
        envelope = wire.pack(
            {
                "users": _users(3),
                "idempotency_key": "v1-batch",
                "reports": wire.encode_reports(reports),
            },
            server.fingerprint,
        )
        assert "campaign" not in envelope
        response = client._request("POST", "/report", envelope)
        assert response["status"] == "accepted"
        assert response["campaign"] == server.fingerprint

    def test_no_default_campaign_rejects_anonymous_requests(self, serve):
        freq = _freq_protocol()
        server = serve(
            None, lifetime_epsilon=1.0, campaigns=[freq.spec]
        )
        client = ServiceClient("127.0.0.1", server.port)
        with pytest.raises(ServiceError) as excinfo:
            client.fetch_spec()
        assert excinfo.value.status == 404
        assert excinfo.value.payload["error"] == "unknown_campaign"
        # Addressing the campaign explicitly works.
        bound = client.for_campaign(freq.spec)
        rng = np.random.default_rng(1)
        bound.submit(rng.integers(0, 12, 10), users=_users(10), rng=0)

    def test_fingerprint_checked_against_addressed_campaign(self, serve):
        """Naming campaign A while carrying campaign B's fingerprint is
        a 409 — the check runs against the *addressed* campaign."""
        mean, freq = _mean_protocol(), _freq_protocol()
        server = serve(
            mean, lifetime_epsilon=4.0, campaigns=[freq.spec]
        )
        client = ServiceClient("127.0.0.1", server.port)
        freq_fp = wire.spec_fingerprint(freq.spec)
        reports = freq.client().encode_batch(
            np.zeros(2, dtype=int), np.random.default_rng(0)
        )
        envelope = wire.pack(
            {
                "users": _users(2),
                "idempotency_key": None,
                "reports": wire.encode_reports(reports),
            },
            server.fingerprint,  # mean's fingerprint...
            campaign=freq_fp,  # ...addressed at the frequency campaign
        )
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/report", envelope)
        assert excinfo.value.status == 409
        assert excinfo.value.payload["error"] == "spec_mismatch"
        assert client.healthz()["reports"] == 0

    def test_unknown_campaign_is_404(self, serve):
        server = serve(_mean_protocol())
        client = ServiceClient("127.0.0.1", server.port)
        bound = client.for_campaign("e" * 64)
        with pytest.raises(ServiceError) as excinfo:
            bound.submit(np.zeros(1), users=_users(1), rng=0)
        assert excinfo.value.status == 404
        assert excinfo.value.payload["error"] == "unknown_campaign"

    def test_bad_spec_registration_is_400(self, serve):
        server = serve(_mean_protocol())
        client = ServiceClient("127.0.0.1", server.port)
        with pytest.raises(ServiceError) as excinfo:
            client.register_campaign({"kind": "nope", "epsilon": 1.0})
        assert excinfo.value.status == 400
        assert excinfo.value.payload["error"] == "bad_spec"
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/campaigns", {"not_spec": 1})
        assert excinfo.value.status == 400


class TestLifecycleOverHttp:
    def test_seal_then_report_is_409(self, serve):
        freq = _freq_protocol()
        server = serve(_mean_protocol(), lifetime_epsilon=4.0,
                       campaigns=[freq.spec])
        client = ServiceClient("127.0.0.1", server.port)
        bound = client.for_campaign(freq.spec)
        rng = np.random.default_rng(0)
        bound.submit(rng.integers(0, 12, 20), users=_users(20), rng=1)
        sealed = bound.seal_campaign()
        assert sealed["state"] == "sealed"
        with pytest.raises(CampaignClosedError) as excinfo:
            bound.submit(rng.integers(0, 12, 5),
                         users=_users(5, "late"), rng=2)
        assert excinfo.value.status == 409
        assert excinfo.value.payload["error"] == "campaign_sealed"
        # Nothing absorbed, nobody charged.
        health = client.healthz()
        assert health["reports"] == 20
        assert health["users_charged"] == 20

    def test_estimate_finality_walks_lifecycle(self, serve):
        freq = _freq_protocol()
        server = serve(None, lifetime_epsilon=1.0,
                       campaigns=[freq.spec])
        bound = ServiceClient("127.0.0.1", server.port).for_campaign(
            freq.spec
        )
        rng = np.random.default_rng(0)
        bound.submit(rng.integers(0, 12, 30), users=_users(30), rng=1)
        # Open campaign: estimates allowed but explicitly non-final.
        interim = bound.estimate_info()
        assert interim["state"] == "open"
        assert interim["final"] is False
        bound.seal_campaign()
        # First estimate from a sealed campaign finalizes it.
        final = bound.estimate_info()
        assert final["final"] is True
        assert final["state"] == "estimated"
        np.testing.assert_array_equal(
            np.asarray(final["estimate"]), np.asarray(interim["estimate"])
        )
        assert [c["state"] for c in bound.campaigns()] == ["estimated"]
        # Sealing is idempotent even once estimated.
        assert bound.seal_campaign()["state"] == "estimated"

    def test_sealed_default_campaign_still_blocks_v1_clients(self, serve):
        protocol = _mean_protocol()
        server = serve(protocol, lifetime_epsilon=2.0)
        client = ServiceClient("127.0.0.1", server.port)
        client.submit(np.zeros(5), users=_users(5), rng=0)
        client.seal_campaign()  # resolves to the default campaign
        with pytest.raises(CampaignClosedError):
            client.submit(np.zeros(5), users=_users(5, "late"), rng=1)


class TestCrossCampaignBudget:
    def test_over_budget_on_second_campaign_is_atomic_429(self, serve):
        """A user whose combined epsilon across campaigns would exceed
        the global budget poisons the whole second-campaign batch:
        nothing absorbed, nobody charged."""
        mean = _mean_protocol(1.0)
        freq = _freq_protocol(1.0)
        server = serve(
            mean, lifetime_epsilon=1.5, campaigns=[freq.spec]
        )
        client = ServiceClient("127.0.0.1", server.port)
        freq_client = client.for_campaign(freq.spec)
        # "veteran" spends 1.0 of their 1.5 global budget in campaign A.
        client.submit(np.zeros(1), users=["veteran"], rng=0)
        before = client.healthz()
        # Campaign B charges 1.0/report: veteran only has 0.5 left
        # GLOBALLY even though they never reported to B.
        rng = np.random.default_rng(1)
        with pytest.raises(OverBudgetError) as excinfo:
            freq_client.submit(
                rng.integers(0, 12, 3),
                users=["fresh-a", "veteran", "fresh-b"],
                rng=2,
            )
        assert excinfo.value.status == 429
        assert excinfo.value.rejected_users == ["veteran"]
        after = client.healthz()
        assert after["reports"] == before["reports"]
        assert after["users_charged"] == before["users_charged"]
        # The fresh users still have full budget.
        freq_client.submit(
            rng.integers(0, 12, 2), users=["fresh-a", "fresh-b"], rng=3
        )
        # Per-campaign breakdown on the server ledger: labels are
        # campaign fingerprints.
        breakdown = server.ledger.spent_by_campaign("fresh-a")
        assert breakdown == {
            wire.spec_fingerprint(freq.spec): pytest.approx(1.0)
        }

    def test_budget_spans_many_campaigns(self, serve):
        specs = [
            Protocol.numeric_mean(0.5, "hm").spec,
            Protocol.numeric_mean(0.5, "pm").spec,
            Protocol.frequency(0.5, domain=4).spec,
        ]
        server = serve(None, lifetime_epsilon=1.0, campaigns=specs)
        base = ServiceClient("127.0.0.1", server.port)
        rng = np.random.default_rng(5)
        # Two campaigns at 0.5 each exhaust the 1.0 global budget...
        base.for_campaign(specs[0]).submit(
            rng.uniform(-1, 1, 4), users=_users(4), rng=0
        )
        base.for_campaign(specs[1]).submit(
            rng.uniform(-1, 1, 4), users=_users(4), rng=1
        )
        # ...so the third campaign rejects every one of these users.
        with pytest.raises(OverBudgetError) as excinfo:
            base.for_campaign(specs[2]).submit(
                rng.integers(0, 4, 4), users=_users(4), rng=2
            )
        assert set(excinfo.value.rejected_users) == set(_users(4))
        for user in _users(4):
            assert server.ledger.remaining(user) == pytest.approx(0.0)


class TestConcurrentIngest:
    def test_threaded_clients_into_two_campaigns_bitwise(self, serve):
        """Interleaved ingestion from concurrent threads: each
        campaign's aggregate is bitwise what absorbing its batches
        in its own submission order produces."""
        freq = _freq_protocol(1.0, domain=16)
        mean = _mean_protocol(1.0)
        server = serve(
            mean, lifetime_epsilon=2.0, campaigns=[freq.spec]
        )
        rng = np.random.default_rng(13)
        workloads = {
            "mean": (mean, rng.uniform(-1, 1, N), "m"),
            "freq": (freq, rng.integers(0, 16, N), "f"),
        }
        batches = {}
        for name, (protocol, values, prefix) in workloads.items():
            encoder = protocol.client()
            batches[name] = [
                (
                    encoder.encode_batch(
                        values[i * 25 : (i + 1) * 25],
                        np.random.default_rng(1000 + i),
                    ),
                    _users(25, prefix=f"{prefix}{i}-"),
                )
                for i in range(N // 25)
            ]

        errors = []

        def _pump(name, client):
            try:
                for reports, users in batches[name]:
                    client.submit_reports(reports, users)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((name, exc))

        base = ServiceClient("127.0.0.1", server.port)
        threads = [
            threading.Thread(
                target=_pump, args=("mean", ServiceClient(
                    "127.0.0.1", server.port))
            ),
            threading.Thread(
                target=_pump,
                args=("freq", base.for_campaign(freq.spec)),
            ),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors

        for name, (protocol, _, _) in workloads.items():
            reference = protocol.server()
            for reports, _ in batches[name]:
                reference.absorb(reports)
            client = (
                base
                if name == "mean"
                else base.for_campaign(freq.spec)
            )
            np.testing.assert_array_equal(
                np.asarray(client.estimate()),
                np.asarray(reference.estimate()),
            )
        health = base.healthz()
        assert health["reports"] == 2 * N
        assert health["users_charged"] == 2 * N


class TestKillAndResume:
    def _two_campaign_batches(self):
        freq = _freq_protocol(1.0, domain=8)
        mean = _mean_protocol(1.0)
        rng = np.random.default_rng(21)
        mean_batches = [
            (
                mean.client().encode_batch(
                    rng.uniform(-1, 1, 30), np.random.default_rng(i)
                ),
                _users(30, prefix=f"m{i}-"),
            )
            for i in range(4)
        ]
        freq_batches = [
            (
                freq.client().encode_batch(
                    rng.integers(0, 8, 30),
                    np.random.default_rng(100 + i),
                ),
                _users(30, prefix=f"f{i}-"),
            )
            for i in range(4)
        ]
        return mean, freq, mean_batches, freq_batches

    def test_mid_run_kill_restores_all_campaigns_bitwise(
        self, serve, tmp_path
    ):
        mean, freq, mean_batches, freq_batches = (
            self._two_campaign_batches()
        )

        # Uninterrupted references, absorbed in submission order; the
        # frequency campaign seals after three batches, so its fourth
        # batch never lands anywhere.
        reference = {"mean": mean.server(), "freq": freq.server()}
        for reports, _ in mean_batches:
            reference["mean"].absorb(reports)
        for reports, _ in freq_batches[:3]:
            reference["freq"].absorb(reports)

        server = serve(
            mean,
            lifetime_epsilon=2.0,
            campaigns=[freq.spec],
            store=SnapshotStore(tmp_path),
            checkpoint_every=1,
        )
        base = ServiceClient("127.0.0.1", server.port)
        freq_client = base.for_campaign(freq.spec)
        for reports, users in mean_batches[:2]:
            base.submit_reports(reports, users)
        for reports, users in freq_batches[:3]:
            freq_client.submit_reports(reports, users)
        freq_client.seal_campaign()
        ledger_before = server.ledger.to_dict()
        server.stop()  # abrupt: no final checkpoint, crash-equivalent

        resumed = serve(
            mean,
            lifetime_epsilon=2.0,
            campaigns=[freq.spec],
            store=SnapshotStore(tmp_path),
            checkpoint_every=1,
        )
        # Ledger survives kill-and-resume bitwise.
        assert resumed.ledger.to_dict() == ledger_before
        base2 = ServiceClient("127.0.0.1", resumed.port)
        health = base2.healthz()
        assert health["reports"] == 150
        campaigns = {
            c["campaign"]: c for c in base2.campaigns()
        }
        freq_fp = wire.spec_fingerprint(freq.spec)
        assert campaigns[freq_fp]["state"] == "sealed"
        assert campaigns[resumed.fingerprint]["state"] == "open"

        # The sealed campaign still refuses reports after resume.
        freq_client2 = base2.for_campaign(freq.spec)
        with pytest.raises(CampaignClosedError):
            freq_client2.submit_reports(*freq_batches[3])

        # Finish the open campaign; both estimates are bitwise equal
        # to the uninterrupted run.
        for reports, users in mean_batches[2:]:
            base2.submit_reports(reports, users)
        np.testing.assert_array_equal(
            np.asarray(base2.estimate()),
            np.asarray(reference["mean"].estimate()),
        )
        freq_final = freq_client2.estimate_info()
        np.testing.assert_array_equal(
            np.asarray(freq_final["estimate"]),
            np.asarray(reference["freq"].estimate()),
        )
        assert freq_final["final"] is True
        assert freq_final["state"] == "estimated"

    def test_estimated_state_survives_restart(self, serve, tmp_path):
        freq = _freq_protocol()
        server = serve(
            None,
            lifetime_epsilon=1.0,
            campaigns=[freq.spec],
            store=SnapshotStore(tmp_path),
            checkpoint_every=1,
        )
        bound = ServiceClient("127.0.0.1", server.port).for_campaign(
            freq.spec
        )
        rng = np.random.default_rng(0)
        bound.submit(rng.integers(0, 12, 20), users=_users(20), rng=1)
        bound.seal_campaign()
        final = bound.estimate_info()
        assert final["state"] == "estimated"
        server.stop()

        resumed = serve(
            None,
            lifetime_epsilon=1.0,
            store=SnapshotStore(tmp_path),
            checkpoint_every=1,
        )
        bound2 = ServiceClient(
            "127.0.0.1", resumed.port
        ).for_campaign(freq.spec)
        after = bound2.estimate_info()
        assert after["state"] == "estimated"
        np.testing.assert_array_equal(
            np.asarray(after["estimate"]),
            np.asarray(final["estimate"]),
        )

    def test_budgets_enforced_across_campaigns_after_resume(
        self, serve, tmp_path
    ):
        mean = _mean_protocol(1.0)
        freq = _freq_protocol(1.0)
        server = serve(
            mean,
            lifetime_epsilon=1.5,
            campaigns=[freq.spec],
            store=SnapshotStore(tmp_path),
            checkpoint_every=1,
        )
        client = ServiceClient("127.0.0.1", server.port)
        client.submit(np.zeros(10), users=_users(10), rng=0)
        server.stop()

        resumed = serve(
            mean,
            lifetime_epsilon=1.5,
            campaigns=[freq.spec],
            store=SnapshotStore(tmp_path),
            checkpoint_every=1,
        )
        freq_client = ServiceClient(
            "127.0.0.1", resumed.port
        ).for_campaign(freq.spec)
        rng = np.random.default_rng(1)
        with pytest.raises(OverBudgetError) as excinfo:
            freq_client.submit(
                rng.integers(0, 12, 10), users=_users(10), rng=2
            )
        assert set(excinfo.value.rejected_users) == set(_users(10))

    def test_resume_refuses_foreign_default(self, tmp_path):
        mean = _mean_protocol(1.0)
        server = IngestionServer(
            mean, store=SnapshotStore(tmp_path), checkpoint_every=1
        ).run_in_thread()
        try:
            client = ServiceClient("127.0.0.1", server.port)
            client.submit(np.zeros(3), users=_users(3), rng=0)
        finally:
            server.stop()
        with pytest.raises(wire.SpecMismatchError):
            IngestionServer(
                _mean_protocol(2.0), store=SnapshotStore(tmp_path)
            )


class TestHealthz:
    def test_enriched_healthz(self, serve, tmp_path):
        freq = _freq_protocol()
        server = serve(
            _mean_protocol(),
            lifetime_epsilon=2.0,
            campaigns=[freq.spec],
            store=SnapshotStore(tmp_path),
            checkpoint_every=1,
        )
        client = ServiceClient("127.0.0.1", server.port)
        client.submit(np.zeros(5), users=_users(5), rng=0)
        health = client.healthz()
        assert health["uptime_seconds"] >= 0.0
        assert health["lifetime_epsilon"] == 2.0
        assert health["snapshot"]["latest_seq"] == 1
        assert health["snapshot"]["age_seconds"] >= 0.0
        per_campaign = health["campaigns"]
        assert len(per_campaign) == 2
        default_entry = per_campaign[server.fingerprint]
        assert default_entry["reports"] == 5
        assert default_entry["batches_accepted"] == 1
        assert default_entry["default"] is True
        freq_entry = per_campaign[wire.spec_fingerprint(freq.spec)]
        assert freq_entry["reports"] == 0
        assert freq_entry["state"] == "open"

    def test_storeless_healthz_has_null_snapshot(self, serve):
        server = serve(_mean_protocol())
        health = ServiceClient("127.0.0.1", server.port).healthz()
        assert health["snapshot"] is None


class TestClientRetry:
    def test_connection_errors_backed_off_with_attempt_count(
        self, monkeypatch
    ):
        sleeps = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", sleeps.append
        )
        client = ServiceClient(
            "127.0.0.1", 1, retries=3, retry_delay=0.1,
            retry_max_delay=0.25, timeout=0.2,
        )
        with pytest.raises(ConnectionError) as excinfo:
            client.healthz()
        assert "4 attempts" in str(excinfo.value)
        assert len(sleeps) == 3
        # Bounded exponential with jitter in [0.5, 1] per attempt.
        for delay, base in zip(sleeps, [0.1, 0.2, 0.25]):
            assert 0.5 * base <= delay <= base

    def test_5xx_retried_then_succeeds(self, serve, monkeypatch):
        server = serve(_mean_protocol())
        original = server._dispatch
        failures = {"left": 2}

        def flaky(method, path, query, body):
            if failures["left"] > 0:
                failures["left"] -= 1
                return 500, {"error": "internal", "detail": "injected"}
            return original(method, path, query, body)

        monkeypatch.setattr(server, "_dispatch", flaky)
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda _s: None
        )
        client = ServiceClient("127.0.0.1", server.port, retries=3)
        assert client.healthz()["status"] == "ok"
        assert failures["left"] == 0

    def test_5xx_exhaustion_surfaces_attempts(self, serve, monkeypatch):
        server = serve(_mean_protocol())

        def always_500(method, path, query, body):
            return 500, {"error": "internal", "detail": "injected"}

        monkeypatch.setattr(server, "_dispatch", always_500)
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda _s: None
        )
        client = ServiceClient("127.0.0.1", server.port, retries=2)
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 500
        assert excinfo.value.attempts == 3
        assert "3 attempts" in str(excinfo.value)

    def test_4xx_not_retried(self, serve):
        server = serve(_mean_protocol())
        client = ServiceClient("127.0.0.1", server.port, retries=3)
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404
        assert excinfo.value.attempts == 1


class TestBackoffJitter:
    """The jitter rng is injected (QA101): seedable, never global."""

    def test_seeded_backoff_is_deterministic(self):
        def run():
            client = ServiceClient(
                "127.0.0.1", 1, retry_delay=0.1, retry_max_delay=2.0,
                backoff_rng=random.Random(7),
            )
            return [client._backoff(k) for k in (1, 2, 3)]

        delays = [run(), run()]
        assert delays[0] == delays[1]
        # Matches the documented formula against an identically
        # seeded reference stream.
        reference = random.Random(7)
        for k, delay in zip((1, 2, 3), delays[0]):
            base = min(0.1 * 2.0 ** (k - 1), 2.0)
            assert delay == base * (0.5 + 0.5 * reference.random())

    def test_backoff_never_touches_module_global_rng(self):
        random.seed(1234)
        state = random.getstate()
        client = ServiceClient("127.0.0.1", 1)
        for attempt in (1, 2, 3):
            client._backoff(attempt)
        assert random.getstate() == state

    def test_for_campaign_sibling_shares_backoff_rng(self):
        rng = random.Random(3)
        client = ServiceClient("127.0.0.1", 1, backoff_rng=rng)
        assert client.for_campaign("f" * 64).backoff_rng is rng

    def test_connection_retry_sleeps_reproducible(self, monkeypatch):
        def run(seed):
            sleeps = []
            monkeypatch.setattr(
                "repro.service.client.time.sleep", sleeps.append
            )
            client = ServiceClient(
                "127.0.0.1", 1, retries=3, retry_delay=0.1,
                retry_max_delay=0.25, timeout=0.2,
                backoff_rng=random.Random(seed),
            )
            with pytest.raises(ConnectionError):
                client.healthz()
            return sleeps

        first, second = run(11), run(11)
        assert first == second
        for delay, base in zip(first, [0.1, 0.2, 0.25]):
            assert 0.5 * base <= delay <= base
