"""Tests specific to the Laplace mechanism."""

import numpy as np
import pytest

from repro.core import LaplaceMechanism


class TestParameters:
    def test_scale_is_two_over_eps(self):
        assert LaplaceMechanism(2.0).scale == pytest.approx(1.0)

    def test_worst_case_variance_formula(self, epsilon):
        mech = LaplaceMechanism(epsilon)
        assert mech.worst_case_variance() == pytest.approx(8.0 / epsilon**2)

    def test_variance_is_input_independent(self):
        mech = LaplaceMechanism(1.0)
        grid = np.linspace(-1, 1, 11)
        assert np.allclose(mech.variance(grid), 8.0)

    def test_output_unbounded(self):
        lo, hi = LaplaceMechanism(1.0).output_range()
        assert lo == -np.inf and hi == np.inf


class TestPdf:
    def test_pdf_integrates_to_one(self):
        mech = LaplaceMechanism(1.0)
        x = np.linspace(-60, 60, 400_001)
        mass = np.trapezoid(mech.pdf(x, 0.3), x)
        assert mass == pytest.approx(1.0, abs=1e-6)

    def test_pdf_peaks_at_input(self):
        mech = LaplaceMechanism(1.0)
        x = np.linspace(-3, 3, 601)
        density = mech.pdf(x, 0.5)
        assert x[np.argmax(density)] == pytest.approx(0.5, abs=0.02)

    def test_ldp_density_ratio_bounded(self, epsilon):
        """For any t, t' in [-1,1] and any x: pdf(x|t)/pdf(x|t') <= e^eps."""
        mech = LaplaceMechanism(epsilon)
        x = np.linspace(-30, 30, 2001)
        for t in (-1.0, 0.0, 1.0):
            for t_prime in (-1.0, 0.3, 1.0):
                ratio = mech.pdf(x, t) / mech.pdf(x, t_prime)
                assert ratio.max() <= np.exp(epsilon) * (1 + 1e-9)


class TestSampling:
    def test_noise_is_symmetric(self, rng):
        mech = LaplaceMechanism(1.0)
        out = mech.privatize(np.zeros(200_000), rng)
        # Skewness of Laplace is 0; sample skew should be near 0.
        skew = np.mean(out**3) / np.mean(out**2) ** 1.5
        assert abs(skew) < 0.1

    def test_larger_epsilon_means_less_noise(self, rng):
        loose = LaplaceMechanism(0.5).privatize(np.zeros(50_000), rng)
        tight = LaplaceMechanism(4.0).privatize(np.zeros(50_000), rng)
        assert np.var(tight) < np.var(loose)
