"""Tests for the Hybrid Mechanism (PM/Duchi mixture)."""

import math

import numpy as np
import pytest

from repro.core import DuchiMechanism, HybridMechanism, PiecewiseMechanism
from repro.theory.constants import EPSILON_STAR, hybrid_alpha


class TestAlpha:
    def test_alpha_formula_above_threshold(self):
        assert hybrid_alpha(2.0) == pytest.approx(1.0 - math.exp(-1.0))

    def test_alpha_zero_at_or_below_threshold(self):
        assert hybrid_alpha(EPSILON_STAR) == 0.0
        assert hybrid_alpha(0.3) == 0.0

    def test_alpha_continuous_at_threshold(self):
        """Just above eps*, alpha jumps to 1 - e^{-eps*/2} ~= 0.26 — the
        paper's optimum is genuinely discontinuous there; both branches
        give the same worst-case variance at eps* (Corollary 1)."""
        above = HybridMechanism(EPSILON_STAR + 1e-9)
        below = HybridMechanism(EPSILON_STAR)
        assert above.worst_case_variance() == pytest.approx(
            below.worst_case_variance(), rel=1e-6
        )

    def test_alpha_override_accepted(self):
        assert HybridMechanism(1.0, alpha=0.5).alpha == 0.5

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_alpha_override_validated(self, bad):
        with pytest.raises(ValueError):
            HybridMechanism(1.0, alpha=bad)


class TestVariance:
    def test_mixture_formula(self, epsilon):
        hm = HybridMechanism(epsilon)
        pm = PiecewiseMechanism(epsilon)
        du = DuchiMechanism(epsilon)
        grid = np.linspace(-1, 1, 21)
        want = hm.alpha * pm.variance(grid) + (1 - hm.alpha) * du.variance(
            grid
        )
        assert np.allclose(hm.variance(grid), want)

    def test_variance_constant_in_t_above_threshold(self):
        """With the optimal alpha the t^2 terms cancel exactly."""
        hm = HybridMechanism(2.0)
        grid = np.linspace(-1, 1, 51)
        variances = hm.variance(grid)
        assert variances.max() - variances.min() < 1e-12

    def test_worst_case_matches_eq8(self, epsilon):
        hm = HybridMechanism(epsilon)
        grid = np.linspace(-1, 1, 201)
        assert hm.worst_case_variance() == pytest.approx(
            float(hm.variance(grid).max()), rel=1e-9
        )

    def test_corollary1_dominates_both_components(self, epsilon):
        """HM's worst case <= min(PM, Duchi) worst cases (Corollary 1)."""
        hm = HybridMechanism(epsilon).worst_case_variance()
        pm = PiecewiseMechanism(epsilon).worst_case_variance()
        du = DuchiMechanism(epsilon).worst_case_variance()
        assert hm <= min(pm, du) + 1e-12

    def test_strict_domination_above_threshold(self):
        eps = 2.0
        hm = HybridMechanism(eps).worst_case_variance()
        pm = PiecewiseMechanism(eps).worst_case_variance()
        du = DuchiMechanism(eps).worst_case_variance()
        assert hm < min(pm, du)

    def test_custom_alpha_worst_case_grid_fallback(self):
        hm = HybridMechanism(2.0, alpha=0.3)
        grid = np.linspace(-1, 1, 401)
        assert hm.worst_case_variance() == pytest.approx(
            float(hm.variance(grid).max()), rel=1e-6
        )


class TestSampling:
    def test_degenerates_to_duchi_below_threshold(self, rng):
        hm = HybridMechanism(0.4)
        assert hm.alpha == 0.0
        out = hm.privatize(rng.uniform(-1, 1, 5_000), rng)
        magnitudes = np.unique(np.abs(out))
        assert magnitudes.shape == (1,)
        assert magnitudes[0] == pytest.approx(hm.duchi.bound)

    def test_mixture_hits_both_components(self, rng):
        hm = HybridMechanism(2.0)
        out = hm.privatize(np.zeros(50_000), rng)
        binary = np.isclose(np.abs(out), hm.duchi.bound)
        frac_duchi = float(np.mean(binary))
        # PM at t=0 essentially never lands exactly on +-bound.
        assert frac_duchi == pytest.approx(1.0 - hm.alpha, abs=0.01)

    def test_empirical_variance_matches(self, rng):
        hm = HybridMechanism(1.5)
        for t in (0.0, 0.6):
            out = hm.privatize(np.full(150_000, t), rng)
            assert np.var(out) == pytest.approx(
                float(hm.variance(t)), rel=0.05
            )

    def test_output_within_union_range(self, rng):
        hm = HybridMechanism(1.0)
        lo, hi = hm.output_range()
        out = hm.privatize(rng.uniform(-1, 1, 20_000), rng)
        assert out.min() >= lo - 1e-9 and out.max() <= hi + 1e-9
