"""Tests for repro.obs.logging: JSON/text formatters, context binding,
idempotent handler installation, and the shared CLI flags."""

import argparse
import asyncio
import io
import json
import logging

import pytest

from repro.obs.logging import (
    JsonFormatter,
    TextFormatter,
    add_logging_arguments,
    bind_campaign,
    bound_context,
    configure_logging,
    context_fields,
    get_logger,
)


def make_record(message="batch accepted", level=logging.INFO, extra=None):
    record = logging.LogRecord(
        name="repro.test",
        level=level,
        pathname=__file__,
        lineno=1,
        msg=message,
        args=(),
        exc_info=None,
    )
    for key, value in (extra or {}).items():
        setattr(record, key, value)
    return record


class TestJsonFormatter:
    def test_one_json_object_per_line_with_stable_keys(self):
        line = JsonFormatter().format(
            make_record(extra={"reports": 2000, "shard": 3})
        )
        assert "\n" not in line
        entry = json.loads(line)
        assert list(entry)[:4] == ["ts", "level", "logger", "event"]
        assert entry["level"] == "info"
        assert entry["logger"] == "repro.test"
        assert entry["event"] == "batch accepted"
        assert entry["reports"] == 2000
        assert entry["shard"] == 3

    def test_context_ids_are_included(self):
        with bound_context(request_id="r-17", campaign="3f9a"):
            entry = json.loads(JsonFormatter().format(make_record()))
        assert entry["request_id"] == "r-17"
        assert entry["campaign"] == "3f9a"

    def test_unserializable_extras_fall_back_to_repr(self):
        entry = json.loads(
            JsonFormatter().format(make_record(extra={"obj": object()}))
        )
        assert entry["obj"].startswith("<object object")

    def test_exception_info_rendered(self):
        try:
            raise ValueError("boom")
        except ValueError:
            import sys

            record = make_record(level=logging.ERROR)
            record.exc_info = sys.exc_info()
        entry = json.loads(JsonFormatter().format(record))
        assert entry["exc_type"] == "ValueError"
        assert "boom" in entry["exc"]


class TestTextFormatter:
    def test_human_line_with_key_value_tail(self):
        line = TextFormatter().format(make_record(extra={"reports": 5}))
        assert "info" in line
        assert "repro.test: batch accepted" in line
        assert line.endswith("reports=5")

    def test_values_with_spaces_are_quoted(self):
        line = TextFormatter().format(
            make_record(extra={"note": "two words"})
        )
        assert 'note="two words"' in line


class TestContextPropagation:
    def test_bound_context_restores_previous_binding(self):
        assert context_fields() == {}
        with bound_context(request_id="outer"):
            with bound_context(request_id="inner", campaign="c1"):
                assert context_fields() == {
                    "request_id": "inner",
                    "campaign": "c1",
                }
            assert context_fields() == {"request_id": "outer"}
        assert context_fields() == {}

    def test_bind_campaign_sticks_within_request_scope(self):
        with bound_context(request_id="r-1"):
            bind_campaign("abc")
            assert context_fields()["campaign"] == "abc"

    def test_context_survives_await_boundaries(self):
        async def handler(request_id):
            with bound_context(request_id=request_id):
                await asyncio.sleep(0)
                return context_fields()["request_id"]

        async def main():
            return await asyncio.gather(handler("r-a"), handler("r-b"))

        assert asyncio.run(main()) == ["r-a", "r-b"]


class TestConfigureLogging:
    def test_installs_handler_and_emits_json(self):
        stream = io.StringIO()
        logger = logging.getLogger("repro.test.cfg1")
        logger.propagate = False
        configure_logging("json", "info", stream=stream, logger=logger)
        logger.info("hello", extra={"k": "v"})
        entry = json.loads(stream.getvalue().strip())
        assert entry["event"] == "hello"
        assert entry["k"] == "v"

    def test_reconfiguring_does_not_double_log(self):
        stream = io.StringIO()
        logger = logging.getLogger("repro.test.cfg2")
        logger.propagate = False
        configure_logging("text", "info", stream=stream, logger=logger)
        configure_logging("json", "info", stream=stream, logger=logger)
        logger.info("once")
        assert len(stream.getvalue().strip().splitlines()) == 1

    def test_level_filtering(self):
        stream = io.StringIO()
        logger = logging.getLogger("repro.test.cfg3")
        logger.propagate = False
        configure_logging("text", "warning", stream=stream, logger=logger)
        logger.info("dropped")
        logger.warning("kept")
        assert "dropped" not in stream.getvalue()
        assert "kept" in stream.getvalue()

    def test_bad_arguments_raise(self):
        with pytest.raises(ValueError):
            configure_logging("xml")
        with pytest.raises(ValueError):
            configure_logging("json", level="loud")

    def test_get_logger_is_the_stdlib_factory(self):
        assert get_logger("repro.x") is logging.getLogger("repro.x")


class TestCliFlags:
    def test_defaults_and_choices(self):
        parser = argparse.ArgumentParser()
        add_logging_arguments(parser)
        args = parser.parse_args([])
        assert args.log_format == "text"
        assert args.log_level == "info"
        args = parser.parse_args(["--log-format", "json", "--log-level", "debug"])
        assert args.log_format == "json"
        assert args.log_level == "debug"

    def test_rejects_unknown_format(self):
        parser = argparse.ArgumentParser()
        add_logging_arguments(parser)
        with pytest.raises(SystemExit):
            parser.parse_args(["--log-format", "yaml"])
