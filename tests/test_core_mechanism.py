"""Tests for the mechanism base class and registry."""

import numpy as np
import pytest

from repro.core import available_mechanisms, get_mechanism
from repro.core.mechanism import NumericMechanism, register_mechanism

ALL_MECHANISMS = ("duchi", "hm", "laplace", "pm", "scdf", "staircase")


class TestRegistry:
    def test_all_expected_registered(self):
        assert available_mechanisms() == ALL_MECHANISMS

    def test_get_mechanism_builds_instance(self):
        mech = get_mechanism("pm", 1.0)
        assert mech.epsilon == 1.0
        assert type(mech).__name__ == "PiecewiseMechanism"

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(KeyError, match="available"):
            get_mechanism("nope", 1.0)

    def test_duplicate_registration_rejected(self):
        class Dup(NumericMechanism):
            name = "pm"  # clashes

            def privatize(self, values, rng=None):
                raise NotImplementedError

            def variance(self, t):
                raise NotImplementedError

        with pytest.raises(ValueError, match="duplicate"):
            register_mechanism(Dup)

    def test_unnamed_registration_rejected(self):
        class NoName(NumericMechanism):
            def privatize(self, values, rng=None):
                raise NotImplementedError

            def variance(self, t):
                raise NotImplementedError

        with pytest.raises(ValueError):
            register_mechanism(NoName)


class TestBaseBehaviour:
    @pytest.mark.parametrize("name", ALL_MECHANISMS)
    def test_invalid_epsilon_rejected(self, name):
        with pytest.raises(ValueError):
            get_mechanism(name, 0.0)

    @pytest.mark.parametrize("name", ALL_MECHANISMS)
    def test_out_of_domain_input_rejected(self, name, rng):
        mech = get_mechanism(name, 1.0)
        with pytest.raises(ValueError):
            mech.privatize([2.0], rng)

    @pytest.mark.parametrize("name", ALL_MECHANISMS)
    def test_scalar_in_scalar_out(self, name, rng):
        mech = get_mechanism(name, 1.0)
        out = mech.privatize(0.5, rng)
        assert np.ndim(out) == 0

    @pytest.mark.parametrize("name", ALL_MECHANISMS)
    def test_shape_preserved(self, name, rng):
        mech = get_mechanism(name, 1.0)
        values = rng.uniform(-1, 1, size=(4, 5))
        assert mech.privatize(values, rng).shape == (4, 5)

    @pytest.mark.parametrize("name", ALL_MECHANISMS)
    def test_deterministic_under_fixed_seed(self, name):
        mech = get_mechanism(name, 1.0)
        values = np.linspace(-1, 1, 20)
        a = mech.privatize(values, 123)
        b = mech.privatize(values, 123)
        assert np.array_equal(a, b)

    def test_estimate_mean_is_average(self):
        mech = get_mechanism("laplace", 1.0)
        assert mech.estimate_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_estimate_mean_empty_raises(self):
        mech = get_mechanism("laplace", 1.0)
        with pytest.raises(ValueError):
            mech.estimate_mean([])

    @pytest.mark.parametrize("name", ALL_MECHANISMS)
    def test_output_within_declared_range(self, name, rng):
        mech = get_mechanism(name, 1.0)
        lo, hi = mech.output_range()
        out = mech.privatize(rng.uniform(-1, 1, 5_000), rng)
        assert out.min() >= lo - 1e-9
        assert out.max() <= hi + 1e-9

    @pytest.mark.parametrize("name", ALL_MECHANISMS)
    def test_worst_case_variance_dominates_pointwise(self, name):
        mech = get_mechanism(name, 1.3)
        grid = np.linspace(-1, 1, 201)
        assert mech.worst_case_variance() >= mech.variance(grid).max() - 1e-12
