"""Equivalence tests for the vectorized hot paths.

Two per-value Python loops were vectorized in this change set; each is
pinned against a reference re-implementation of the loop it replaced:

* OLH support counting (repro/frequency/olh.py) — deterministic given
  the reports, so the vectorized blocks must agree *bitwise* with the
  per-value loop, including across internal block boundaries.
* The per-column composition baseline in experiments/runner.py —
  Laplace draws one variate per value, so the single transposed
  privatize call consumes the rng stream exactly as the per-column
  loop did (bitwise agreement); the piecewise-constant mechanisms
  regroup their data-dependent draws, so they are checked
  statistically (both paths estimate the same truth to the same
  accuracy).
"""

import numpy as np
import pytest

import repro.frequency.olh as olh_module
from repro.core.mechanism import get_mechanism
from repro.experiments.runner import numeric_matrix_mse
from repro.frequency.olh import OptimizedLocalHashing
from repro.utils.stats import empirical_mse


def _loop_support_counts(oracle, reports):
    """The pre-vectorization per-value loop, verbatim."""
    counts = np.empty(oracle.k)
    for v in range(oracle.k):
        hashed_v = oracle._hash(
            reports.seeds, np.full(len(reports), v, dtype=np.int64)
        )
        counts[v] = float(np.count_nonzero(hashed_v == reports.buckets))
    return counts


class TestOLHSupportCounts:
    @pytest.mark.parametrize("n,k", [(1, 2), (500, 64), (3_000, 17)])
    def test_bitwise_equal_to_loop(self, n, k):
        oracle = OptimizedLocalHashing(1.0, k=k)
        rng = np.random.default_rng(k)
        reports = oracle.privatize(rng.integers(0, k, n), rng)
        assert np.array_equal(
            oracle.support_counts(reports),
            _loop_support_counts(oracle, reports),
        )

    def test_bitwise_equal_across_block_boundaries(self, monkeypatch):
        """Force tiny blocks so several block edges are exercised."""
        monkeypatch.setattr(olh_module, "_SUPPORT_BLOCK_ELEMENTS", 130)
        oracle = OptimizedLocalHashing(2.0, k=23)
        rng = np.random.default_rng(3)
        reports = oracle.privatize(rng.integers(0, 23, 400), rng)
        assert np.array_equal(
            oracle.support_counts(reports),
            _loop_support_counts(oracle, reports),
        )

    def test_empty_reports_give_zero_counts(self):
        oracle = OptimizedLocalHashing(1.0, k=9)
        reports = oracle.privatize(
            np.zeros(0, dtype=np.int64), np.random.default_rng(0)
        )
        assert np.array_equal(oracle.support_counts(reports), np.zeros(9))

    def test_frequencies_still_debias(self):
        oracle = OptimizedLocalHashing(4.0, k=4)
        rng = np.random.default_rng(7)
        truth = rng.choice(4, size=60_000, p=[0.5, 0.3, 0.15, 0.05])
        reports = oracle.privatize(truth, rng)
        estimates = oracle.estimate_frequencies(reports)
        assert np.allclose(estimates, [0.5, 0.3, 0.15, 0.05], atol=0.03)


def _loop_column_estimates(matrix, epsilon, method, gen):
    """The pre-vectorization per-column baseline, verbatim."""
    d = matrix.shape[1]
    one_d = get_mechanism(method, epsilon / d)
    return np.array(
        [one_d.privatize(matrix[:, j], gen).mean() for j in range(d)]
    )


class TestVectorizedColumnBaseline:
    def test_laplace_bitwise_equal_to_loop(self):
        """Laplace consumes one variate per value in order, so the
        transposed one-call path replays the loop's stream exactly."""
        rng = np.random.default_rng(11)
        matrix = rng.uniform(-1, 1, (2_000, 6))
        epsilon, d = 2.0, matrix.shape[1]

        loop = _loop_column_estimates(
            matrix, epsilon, "laplace", np.random.default_rng(42)
        )
        one_d = get_mechanism("laplace", epsilon / d)
        vectorized = one_d.privatize(
            matrix.T, np.random.default_rng(42)
        ).mean(axis=1)
        assert np.array_equal(loop, vectorized)

    @pytest.mark.parametrize("method", ["laplace", "scdf", "staircase"])
    def test_estimates_match_truth_like_the_loop(self, method):
        """Both paths are unbiased estimators of the column means with
        the same per-estimate variance; at large n and generous epsilon
        both land within the same tight band around the truth."""
        rng = np.random.default_rng(5)
        matrix = rng.uniform(-1, 1, (40_000, 4))
        truth = matrix.mean(axis=0)
        epsilon, d = 8.0, matrix.shape[1]

        loop = _loop_column_estimates(
            matrix, epsilon, method, np.random.default_rng(9)
        )
        one_d = get_mechanism(method, epsilon / d)
        vectorized = one_d.privatize(
            matrix.T, np.random.default_rng(9)
        ).mean(axis=1)

        assert empirical_mse(loop, truth) < 1e-3
        assert empirical_mse(vectorized, truth) < 1e-3

    @pytest.mark.parametrize("method", ["laplace", "scdf", "staircase"])
    def test_numeric_matrix_mse_end_to_end(self, method):
        """The harness entry point stays a small-MSE unbiased sweep."""
        rng = np.random.default_rng(1)
        matrix = rng.uniform(-1, 1, (20_000, 3))
        mse = numeric_matrix_mse(matrix, 8.0, method, rng=3)
        assert np.isfinite(mse)
        assert mse < 1e-2

    def test_baseline_methods_warn_when_sharding_requested(self):
        """Only pm/hm run through the runtime; sharding knobs on a
        baseline method must not be silently ignored."""
        rng = np.random.default_rng(1)
        matrix = rng.uniform(-1, 1, (2_000, 3))
        with pytest.warns(UserWarning, match="ignored for method"):
            numeric_matrix_mse(matrix, 4.0, "laplace", rng=3, num_shards=4)
        with pytest.warns(UserWarning, match="ignored for method"):
            numeric_matrix_mse(matrix, 4.0, "duchi", rng=3,
                               executor="thread")
