"""Tests for schemas, Dataset and normalization."""

import numpy as np
import pytest

from repro.data.normalize import denormalize_from_unit, normalize_to_unit
from repro.data.schema import (
    CategoricalAttribute,
    Dataset,
    NumericAttribute,
    Schema,
)


class TestNormalize:
    def test_maps_bounds_to_unit(self):
        out = normalize_to_unit([0.0, 5.0, 10.0], 0.0, 10.0)
        assert np.allclose(out, [-1.0, 0.0, 1.0])

    def test_roundtrip(self, rng):
        values = rng.uniform(3.0, 8.0, 100)
        back = denormalize_from_unit(
            normalize_to_unit(values, 3.0, 8.0), 3.0, 8.0
        )
        assert np.allclose(back, values)

    def test_out_of_domain_rejected(self):
        with pytest.raises(ValueError):
            normalize_to_unit([11.0], 0.0, 10.0)

    def test_degenerate_bounds_rejected(self):
        with pytest.raises(ValueError):
            normalize_to_unit([0.0], 5.0, 5.0)

    def test_denormalize_allows_outside_unit(self):
        # Mean estimates can land slightly outside [-1, 1]; denormalize
        # must not clip them.
        out = denormalize_from_unit([1.2], 0.0, 10.0)
        assert out[0] == pytest.approx(11.0)


class TestAttributes:
    def test_numeric_flags(self):
        assert NumericAttribute("x").is_numeric
        assert not CategoricalAttribute("c", 3).is_numeric

    def test_numeric_bad_bounds(self):
        with pytest.raises(ValueError):
            NumericAttribute("x", 1.0, -1.0)

    def test_categorical_bad_cardinality(self):
        with pytest.raises(ValueError):
            CategoricalAttribute("c", 1)


class TestSchema:
    def _schema(self):
        return Schema(
            [
                NumericAttribute("x"),
                CategoricalAttribute("c", 3),
                NumericAttribute("y", 0.0, 5.0),
            ]
        )

    def test_d(self):
        assert self._schema().d == 3

    def test_partitions(self):
        schema = self._schema()
        assert [a.name for a in schema.numeric] == ["x", "y"]
        assert [a.name for a in schema.categorical] == ["c"]

    def test_lookup(self):
        schema = self._schema()
        assert schema["y"].high == 5.0
        assert schema.index("c") == 1
        with pytest.raises(KeyError):
            schema["missing"]
        with pytest.raises(KeyError):
            schema.index("missing")

    def test_select_preserves_order(self):
        sub = self._schema().select(["y", "x"])
        assert sub.names == ("y", "x")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema([NumericAttribute("x"), NumericAttribute("x")])


class TestDataset:
    def _dataset(self, rng, n=100):
        schema = Schema(
            [
                NumericAttribute("x", 0.0, 10.0),
                CategoricalAttribute("c", 3),
            ]
        )
        return Dataset(
            schema=schema,
            columns={
                "x": rng.uniform(0, 10, n),
                "c": rng.integers(0, 3, n),
            },
        )

    def test_n(self, rng):
        assert self._dataset(rng, 57).n == 57
        assert len(self._dataset(rng, 57)) == 57

    def test_missing_column_rejected(self):
        schema = Schema([NumericAttribute("x")])
        with pytest.raises(ValueError):
            Dataset(schema=schema, columns={})

    def test_ragged_columns_rejected(self, rng):
        schema = Schema([NumericAttribute("x"), NumericAttribute("y")])
        with pytest.raises(ValueError):
            Dataset(
                schema=schema,
                columns={"x": np.zeros(3), "y": np.zeros(4)},
            )

    def test_categorical_range_validated(self):
        schema = Schema([CategoricalAttribute("c", 2)])
        with pytest.raises(ValueError):
            Dataset(schema=schema, columns={"c": np.array([0, 2])})

    def test_numeric_matrix_normalized(self, rng):
        ds = self._dataset(rng)
        matrix = ds.numeric_matrix()
        assert matrix.shape == (100, 1)
        assert matrix.min() >= -1.0 and matrix.max() <= 1.0

    def test_categorical_matrix(self, rng):
        ds = self._dataset(rng)
        matrix = ds.categorical_matrix()
        assert matrix.shape == (100, 1)
        assert matrix.dtype == np.int64

    def test_true_means_in_unit_domain(self, rng):
        means = self._dataset(rng).true_numeric_means()
        assert -1.0 <= means["x"] <= 1.0

    def test_true_frequencies_sum_to_one(self, rng):
        freqs = self._dataset(rng).true_categorical_frequencies()
        assert freqs["c"].sum() == pytest.approx(1.0)

    def test_subset(self, rng):
        ds = self._dataset(rng)
        sub = ds.subset(np.arange(10))
        assert sub.n == 10
        assert sub.schema is ds.schema

    def test_select_attributes(self, rng):
        ds = self._dataset(rng)
        sub = ds.select_attributes(["c"])
        assert sub.schema.names == ("c",)
        assert sub.n == ds.n

    def test_to_erm_features_shapes(self, rng):
        ds = self._dataset(rng)
        x, y = ds.to_erm_features("x")
        # Features: only the categorical "c" -> k-1 = 2 columns.
        assert x.shape == (100, 2)
        assert y.shape == (100,)
        assert y.min() >= -1.0 and y.max() <= 1.0

    def test_to_erm_features_requires_numeric_dependent(self, rng):
        ds = self._dataset(rng)
        with pytest.raises(ValueError):
            ds.to_erm_features("c")
