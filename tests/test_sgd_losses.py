"""Tests for the ERM losses, including finite-difference gradient checks."""

import numpy as np
import pytest

from repro.sgd.losses import (
    HingeLoss,
    LinearRegressionLoss,
    LogisticRegressionLoss,
    get_loss,
)

LOSSES = {
    "linear": LinearRegressionLoss,
    "logistic": LogisticRegressionLoss,
    "svm": HingeLoss,
}


def _finite_difference_grad(loss, beta, x, y, h=1e-6):
    """Central-difference per-sample gradients."""
    n, p = x.shape
    grads = np.zeros((n, p))
    for j in range(p):
        plus = beta.copy()
        plus[j] += h
        minus = beta.copy()
        minus[j] -= h
        grads[:, j] = (loss.value(plus, x, y) - loss.value(minus, x, y)) / (
            2 * h
        )
    return grads


class TestRegistry:
    def test_get_loss(self):
        assert isinstance(get_loss("linear"), LinearRegressionLoss)
        assert isinstance(get_loss("logistic"), LogisticRegressionLoss)
        assert isinstance(get_loss("svm"), HingeLoss)

    def test_unknown_loss(self):
        with pytest.raises(KeyError):
            get_loss("huber")

    def test_binary_label_flags(self):
        assert not get_loss("linear").binary_labels
        assert get_loss("logistic").binary_labels
        assert get_loss("svm").binary_labels


class TestGradientsMatchFiniteDifferences:
    @pytest.mark.parametrize("name", ["linear", "logistic"])
    def test_smooth_losses(self, name, rng):
        loss = get_loss(name)
        x = rng.uniform(-1, 1, (20, 5))
        if loss.binary_labels:
            y = rng.choice([-1.0, 1.0], 20)
        else:
            y = rng.uniform(-1, 1, 20)
        beta = rng.normal(0, 0.5, 5)
        analytic = loss.gradient(beta, x, y)
        numeric = _finite_difference_grad(loss, beta, x, y)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_hinge_away_from_kink(self, rng):
        loss = get_loss("svm")
        x = rng.uniform(-1, 1, (50, 4))
        y = rng.choice([-1.0, 1.0], 50)
        beta = rng.normal(0, 0.5, 4)
        margins = y * (x @ beta)
        smooth = np.abs(margins - 1.0) > 1e-3  # away from the kink
        analytic = loss.gradient(beta, x, y)[smooth]
        numeric = _finite_difference_grad(loss, x=x, y=y, beta=beta)[smooth]
        assert np.allclose(analytic, numeric, atol=1e-5)


class TestLossValues:
    def test_linear_zero_at_perfect_fit(self):
        loss = get_loss("linear")
        x = np.array([[1.0, 0.0], [0.0, 1.0]])
        beta = np.array([0.3, -0.4])
        y = x @ beta
        assert loss.mean_value(beta, x, y) == pytest.approx(0.0)

    def test_logistic_at_zero_beta(self):
        loss = get_loss("logistic")
        x = np.ones((4, 2))
        y = np.array([1.0, -1.0, 1.0, -1.0])
        assert loss.mean_value(np.zeros(2), x, y) == pytest.approx(
            np.log(2.0)
        )

    def test_logistic_stable_for_large_margins(self):
        loss = get_loss("logistic")
        x = np.array([[1000.0]])
        beta = np.array([1.0])
        assert np.isfinite(loss.value(beta, x, np.array([1.0])))[0]
        assert np.isfinite(loss.value(beta, x, np.array([-1.0])))[0]
        assert np.all(np.isfinite(loss.gradient(beta, x, np.array([-1.0]))))

    def test_hinge_zero_beyond_margin(self):
        loss = get_loss("svm")
        x = np.array([[2.0]])
        y = np.array([1.0])
        beta = np.array([1.0])  # margin = 2 > 1
        assert loss.value(beta, x, y)[0] == 0.0
        assert np.all(loss.gradient(beta, x, y) == 0.0)

    def test_hinge_active_inside_margin(self):
        loss = get_loss("svm")
        x = np.array([[0.5]])
        y = np.array([1.0])
        beta = np.array([1.0])  # margin = 0.5 < 1
        assert loss.value(beta, x, y)[0] == pytest.approx(0.5)
        assert loss.gradient(beta, x, y)[0, 0] == pytest.approx(-0.5)


class TestPredictions:
    def test_linear_predict(self):
        loss = get_loss("linear")
        x = np.array([[1.0, 2.0]])
        assert loss.predict(np.array([0.5, 0.25]), x)[0] == pytest.approx(1.0)

    @pytest.mark.parametrize("name", ["logistic", "svm"])
    def test_classifiers_predict_signs(self, name, rng):
        loss = get_loss(name)
        x = rng.uniform(-1, 1, (30, 3))
        beta = rng.normal(0, 1, 3)
        preds = loss.predict(beta, x)
        assert set(np.unique(preds)) <= {-1.0, 1.0}

    def test_logistic_proba_in_unit_interval(self, rng):
        loss = get_loss("logistic")
        x = rng.uniform(-1, 1, (30, 3))
        proba = loss.predict_proba(rng.normal(0, 1, 3), x)
        assert np.all((proba >= 0.0) & (proba <= 1.0))

    def test_logistic_proba_consistent_with_predict(self, rng):
        loss = get_loss("logistic")
        x = rng.uniform(-1, 1, (30, 3))
        beta = rng.normal(0, 1, 3)
        preds = loss.predict(beta, x)
        proba = loss.predict_proba(beta, x)
        assert np.all((proba >= 0.5) == (preds == 1.0))


class TestValidation:
    def test_shape_checks(self):
        loss = get_loss("linear")
        with pytest.raises(ValueError):
            loss.value(np.zeros(2), np.zeros((3, 3)), np.zeros(3))
        with pytest.raises(ValueError):
            loss.value(np.zeros(3), np.zeros((3, 3)), np.zeros(4))
        with pytest.raises(ValueError):
            loss.value(np.zeros(3), np.zeros(3), np.zeros(3))
