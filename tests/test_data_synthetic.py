"""Tests for the synthetic workload generators (Figs. 5-6 data)."""

import numpy as np
import pytest

from repro.data.synthetic import (
    power_law_dataset,
    power_law_matrix,
    truncated_gaussian_dataset,
    truncated_gaussian_matrix,
    uniform_dataset,
    uniform_matrix,
)


class TestTruncatedGaussian:
    def test_shape(self, rng):
        assert truncated_gaussian_matrix(100, 16, 0.0, rng=rng).shape == (100, 16)

    def test_range(self, rng):
        out = truncated_gaussian_matrix(50_000, 4, 1.0, rng=rng)
        assert out.min() >= -1.0 and out.max() <= 1.0

    def test_mean_near_mu_when_interior(self, rng):
        out = truncated_gaussian_matrix(100_000, 2, 0.3, 0.25, rng=rng)
        assert out.mean() == pytest.approx(0.3, abs=0.01)

    def test_mu_one_truncation_pulls_mean_down(self, rng):
        """With mu = 1 half the mass is rejected from above; mean < 1."""
        out = truncated_gaussian_matrix(50_000, 2, 1.0, 0.25, rng=rng)
        assert 0.7 < out.mean() < 1.0

    def test_sigma_controls_spread(self, rng):
        tight = truncated_gaussian_matrix(50_000, 1, 0.0, 0.1, rng=rng)
        wide = truncated_gaussian_matrix(50_000, 1, 0.0, 0.4, rng=rng)
        assert tight.std() < wide.std()

    @pytest.mark.parametrize("bad", [(0, 4), (4, 0)])
    def test_bad_shape_rejected(self, bad, rng):
        with pytest.raises(ValueError):
            truncated_gaussian_matrix(bad[0], bad[1], 0.0, rng=rng)

    def test_bad_sigma_rejected(self, rng):
        with pytest.raises(ValueError):
            truncated_gaussian_matrix(10, 2, 0.0, sigma=0.0, rng=rng)


class TestUniform:
    def test_moments(self, rng):
        out = uniform_matrix(200_000, 1, rng=rng)
        assert out.mean() == pytest.approx(0.0, abs=0.01)
        assert np.var(out) == pytest.approx(1.0 / 3.0, abs=0.01)

    def test_range(self, rng):
        out = uniform_matrix(10_000, 3, rng=rng)
        assert out.min() >= -1.0 and out.max() <= 1.0


class TestPowerLaw:
    def test_range(self, rng):
        out = power_law_matrix(50_000, 2, rng=rng)
        assert out.min() >= -1.0 and out.max() <= 1.0

    def test_heavily_skewed_to_lower_end(self, rng):
        out = power_law_matrix(100_000, 1, rng=rng)
        assert np.mean(out < -0.5) > 0.9

    def test_matches_analytic_cdf(self, rng):
        """Empirical CDF vs the closed form at several quantile points."""
        a = 10.0
        out = power_law_matrix(200_000, 1, exponent=a, rng=rng).ravel()
        one_minus_a = 1.0 - a
        tail = 1.0 - 3.0**one_minus_a
        for x in (-0.9, -0.7, -0.4, 0.0, 0.5):
            want = (1.0 - (x + 2.0) ** one_minus_a) / tail
            got = float(np.mean(out <= x))
            assert got == pytest.approx(want, abs=0.01)

    def test_exponent_must_exceed_one(self, rng):
        with pytest.raises(ValueError):
            power_law_matrix(10, 1, exponent=1.0, rng=rng)

    def test_gentler_exponent_less_skew(self, rng):
        steep = power_law_matrix(50_000, 1, exponent=10.0, rng=rng)
        gentle = power_law_matrix(50_000, 1, exponent=2.0, rng=rng)
        assert steep.mean() < gentle.mean()


class TestDatasetWrappers:
    def test_gaussian_dataset(self, rng):
        ds = truncated_gaussian_dataset(100, 16, 0.0, rng=rng)
        assert ds.schema.d == 16
        assert len(ds.schema.numeric) == 16
        assert ds.n == 100

    def test_uniform_dataset(self, rng):
        ds = uniform_dataset(50, 4, rng=rng)
        assert ds.schema.names == ("u0", "u1", "u2", "u3")

    def test_power_law_dataset(self, rng):
        ds = power_law_dataset(50, 3, rng=rng)
        matrix = ds.numeric_matrix()
        assert matrix.shape == (50, 3)
        assert matrix.min() >= -1.0
