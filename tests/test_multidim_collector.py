"""Tests for Algorithm 4 and the Section IV-C mixed collector."""

import numpy as np
import pytest

from repro.data import make_br_like
from repro.data.schema import (
    CategoricalAttribute,
    Dataset,
    NumericAttribute,
    Schema,
)
from repro.multidim import (
    MixedMultidimCollector,
    MultidimNumericCollector,
    sample_attribute_matrix,
)
from repro.theory.constants import optimal_k


class TestSampleAttributeMatrix:
    def test_shape(self, rng):
        assert sample_attribute_matrix(100, 10, 3, rng).shape == (100, 3)

    def test_indices_in_range(self, rng):
        idx = sample_attribute_matrix(200, 7, 4, rng)
        assert idx.min() >= 0 and idx.max() < 7

    def test_no_replacement_within_row(self, rng):
        idx = sample_attribute_matrix(500, 8, 5, rng)
        for row in idx:
            assert len(set(row.tolist())) == 5

    def test_marginal_uniformity(self, rng):
        """Each attribute is sampled by ~ nk/d users."""
        n, d, k = 60_000, 10, 3
        idx = sample_attribute_matrix(n, d, k, rng)
        counts = np.bincount(idx.ravel(), minlength=d) / n
        assert np.allclose(counts, k / d, atol=0.01)

    def test_k_equals_d_is_permutation(self, rng):
        idx = sample_attribute_matrix(50, 4, 4, rng)
        for row in idx:
            assert sorted(row.tolist()) == [0, 1, 2, 3]

    @pytest.mark.parametrize("bad_k", [0, 11])
    def test_bad_k_rejected(self, bad_k, rng):
        with pytest.raises(ValueError):
            sample_attribute_matrix(10, 10, bad_k, rng)

    def test_negative_n_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_attribute_matrix(-1, 5, 2, rng)

    def test_zero_n_yields_empty_matrix(self, rng):
        # n = 0 is the uniform empty-batch no-op, not an error.
        out = sample_attribute_matrix(0, 5, 2, rng)
        assert out.shape == (0, 2)
        assert out.dtype == np.int64


class TestMultidimNumericCollector:
    def test_default_k_matches_eq12(self):
        for eps, d in ((1.0, 10), (4.0, 10), (8.0, 10), (30.0, 10)):
            assert MultidimNumericCollector(eps, d).k == optimal_k(eps, d)

    def test_k_override(self):
        assert MultidimNumericCollector(1.0, 10, k=4).k == 4

    @pytest.mark.parametrize("bad_k", [0, 11])
    def test_bad_k_rejected(self, bad_k):
        with pytest.raises(ValueError):
            MultidimNumericCollector(1.0, 10, k=bad_k)

    def test_per_user_budget_is_eps_over_k(self):
        collector = MultidimNumericCollector(6.0, 10, "pm")
        assert collector.mechanism.epsilon == pytest.approx(
            6.0 / collector.k
        )

    def test_report_sparsity(self, rng):
        collector = MultidimNumericCollector(1.0, 10, "pm")  # k = 1
        t = rng.uniform(-1, 1, (500, 10))
        reports = collector.privatize(t, rng)
        nonzero_per_row = np.count_nonzero(reports, axis=1)
        assert np.all(nonzero_per_row == 1)

    def test_report_scale_bounded(self, rng):
        collector = MultidimNumericCollector(1.0, 10, "pm")
        t = rng.uniform(-1, 1, (500, 10))
        reports = collector.privatize(t, rng)
        bound = (10 / collector.k) * collector.mechanism.c
        assert np.abs(reports).max() <= bound + 1e-9

    @pytest.mark.parametrize("mech", ["pm", "hm", "duchi", "laplace"])
    def test_unbiased_means(self, mech, rng):
        d, n = 6, 120_000
        collector = MultidimNumericCollector(2.0, d, mech)
        t = np.tile(np.linspace(-0.6, 0.6, d), (n, 1))
        estimates = collector.collect(t, rng)
        sem = np.sqrt(collector.worst_case_variance() / n)
        assert np.all(np.abs(estimates - t[0]) < 6.0 * sem)

    @pytest.mark.parametrize("mech", ["pm", "hm"])
    def test_empirical_variance_matches_eq14_15(self, mech, rng):
        d, n = 6, 150_000
        collector = MultidimNumericCollector(2.0, d, mech)
        values = np.array([0.0, 0.5, -0.5, 1.0, -1.0, 0.25])
        t = np.tile(values, (n, 1))
        reports = collector.privatize(t, rng)
        for j in range(d):
            want = float(collector.per_coordinate_variance(values[j]))
            got = float(np.var(reports[:, j]))
            assert got == pytest.approx(want, rel=0.08)

    def test_estimate_means_validates(self):
        collector = MultidimNumericCollector(1.0, 5)
        with pytest.raises(ValueError):
            collector.estimate_means(np.zeros((0, 5)))
        with pytest.raises(ValueError):
            collector.estimate_means(np.zeros((3, 4)))

    def test_wrong_width_rejected(self, rng):
        collector = MultidimNumericCollector(1.0, 5)
        with pytest.raises(ValueError):
            collector.privatize(np.zeros((10, 4)), rng)

    def test_worst_case_variance_positive(self):
        assert MultidimNumericCollector(1.0, 5).worst_case_variance() > 0


def _tiny_mixed_dataset(n, rng):
    schema = Schema(
        [
            NumericAttribute("x", -1.0, 1.0),
            CategoricalAttribute("c", 4),
            NumericAttribute("y", 0.0, 10.0),
            CategoricalAttribute("b", 2),
        ]
    )
    return Dataset(
        schema=schema,
        columns={
            "x": rng.uniform(-1, 1, n),
            "c": rng.choice(4, size=n, p=[0.4, 0.3, 0.2, 0.1]),
            "y": rng.uniform(0, 10, n),
            "b": rng.choice(2, size=n, p=[0.7, 0.3]),
        },
    )


class TestMixedMultidimCollector:
    def test_k_default(self, rng):
        ds = _tiny_mixed_dataset(100, rng)
        assert MixedMultidimCollector(ds.schema, 1.0).k == 1
        assert MixedMultidimCollector(ds.schema, 10.0).k == 4

    def test_schema_mismatch_rejected(self, rng):
        ds = _tiny_mixed_dataset(100, rng)
        other = ds.select_attributes(["x", "c"])
        collector = MixedMultidimCollector(ds.schema, 1.0)
        with pytest.raises(ValueError):
            collector.privatize(other, rng)

    def test_estimates_cover_all_attributes(self, rng):
        ds = _tiny_mixed_dataset(2_000, rng)
        est = MixedMultidimCollector(ds.schema, 2.0).collect(ds, rng)
        assert set(est.means) == {"x", "y"}
        assert set(est.frequencies) == {"c", "b"}
        assert est.frequencies["c"].shape == (4,)

    def test_unbiased_means_and_frequencies(self, rng):
        ds = _tiny_mixed_dataset(150_000, rng)
        collector = MixedMultidimCollector(ds.schema, 2.0)
        est = collector.collect(ds, rng)
        truth_means = ds.true_numeric_means()
        truth_freqs = ds.true_categorical_frequencies()
        for name, value in est.means.items():
            assert value == pytest.approx(truth_means[name], abs=0.06)
        for name, freqs in est.frequencies.items():
            assert np.all(np.abs(freqs - truth_freqs[name]) < 0.06)

    @pytest.mark.parametrize("oracle", ["grr", "sue", "oue", "olh"])
    def test_any_oracle_plugs_in(self, oracle, rng):
        ds = _tiny_mixed_dataset(30_000, rng)
        collector = MixedMultidimCollector(ds.schema, 2.0, oracle=oracle)
        est = collector.collect(ds, rng)
        truth = ds.true_categorical_frequencies()
        for name, freqs in est.frequencies.items():
            assert np.all(np.abs(freqs - truth[name]) < 0.15)

    def test_numeric_budget_is_eps_over_k(self, rng):
        ds = _tiny_mixed_dataset(10, rng)
        collector = MixedMultidimCollector(ds.schema, 6.0)
        assert collector.numeric_mechanism.epsilon == pytest.approx(
            6.0 / collector.k
        )
        for oracle in collector.oracles.values():
            assert oracle.epsilon == pytest.approx(6.0 / collector.k)

    def test_real_dataset_roundtrip(self, rng):
        ds = make_br_like(20_000, rng=rng)
        est = MixedMultidimCollector(ds.schema, 4.0).collect(ds, rng)
        assert est.mean_mse(ds.true_numeric_means()) < 0.01
        assert est.frequency_mse(ds.true_categorical_frequencies()) < 0.01


class TestMixedCollectorVariance:
    def test_worst_case_variance_matches_numeric_collector(self, rng):
        """The mixed collector's numeric variance formula agrees with the
        pure Algorithm 4 collector at the same (eps, d, k)."""
        ds = _tiny_mixed_dataset(10, rng)
        mixed = MixedMultidimCollector(ds.schema, 2.0, "hm")
        numeric = MultidimNumericCollector(2.0, ds.schema.d, "hm", k=mixed.k)
        assert mixed.worst_case_variance() == pytest.approx(
            numeric.worst_case_variance()
        )

    def test_per_coordinate_variance_positive(self, rng):
        ds = _tiny_mixed_dataset(10, rng)
        mixed = MixedMultidimCollector(ds.schema, 1.0, "pm")
        grid = np.linspace(-1, 1, 11)
        assert np.all(mixed.per_coordinate_variance(grid) > 0)

    def test_generic_mechanism_fallback(self, rng):
        ds = _tiny_mixed_dataset(10, rng)
        mixed = MixedMultidimCollector(ds.schema, 1.0, "laplace")
        assert mixed.worst_case_variance() > 0
