"""Smoke + shape tests for every experiment harness (tiny configs)."""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, ERMConfig, EstimationConfig
from repro.experiments import fig01, fig02, fig03, fig04, fig05, fig06
from repro.experiments import fig07, fig08, fig09, table1
from repro.experiments.results import Row, format_table, rows_to_series

TINY = EstimationConfig(n=4_000, repeats=2, epsilons=(1.0, 4.0), seed=7)
TINY_ERM = ERMConfig(n=3_000, folds=2, repeats=1, epsilons=(4.0,), seed=7)


class TestResults:
    def test_rows_to_series(self):
        rows = [
            Row("e", "a", 1.0, 0.5),
            Row("e", "a", 2.0, 0.25),
            Row("e", "b", 1.0, 0.9),
        ]
        series = rows_to_series(rows)
        assert series == {"a": {1.0: 0.5, 2.0: 0.25}, "b": {1.0: 0.9}}

    def test_format_table_contains_everything(self):
        rows = [Row("e", "method", 1.0, 0.5)]
        text = format_table(rows, title="T", x_label="eps")
        assert "T" in text and "method" in text and "5.000e-01" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_format_table_missing_cell_dash(self):
        rows = [Row("e", "a", 1.0, 0.5), Row("e", "b", 2.0, 0.5)]
        assert "-" in format_table(rows)


class TestRegistry:
    def test_all_twelve_artifacts_present(self):
        assert set(EXPERIMENTS) == {
            "table1",
            *(f"fig{i:02d}" for i in range(1, 12)),
        }

    def test_every_module_has_run_and_main(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)
            assert callable(module.main)


class TestTable1:
    def test_every_regime_holds(self):
        checks = table1.run()
        assert len(checks) >= 20
        for check in checks:
            assert check.holds, f"{check.regime} d={check.d} eps={check.epsilon}"


class TestTheoryFigures:
    def test_fig01_series(self):
        rows = fig01.run(epsilons=(0.5, 2.0))
        series = rows_to_series(rows)
        assert set(series) == {
            "Laplace", "SCDF", "Staircase", "Duchi", "PM", "HM",
        }
        # HM is the lower envelope at every eps.
        for eps in (0.5, 2.0):
            values = {name: series[name][eps] for name in series}
            assert values["HM"] == min(values.values())

    def test_fig02_pdf_levels(self):
        rows = fig02.run(epsilon=1.0, grid_size=7)
        series = rows_to_series(rows)
        assert set(series) == {"t=0", "t=0.5", "t=1"}
        values = [v for m in series.values() for v in m.values()]
        assert all(v >= 0 for v in values)

    def test_fig03_all_ratios_below_one(self):
        rows = fig03.run(dimensions=(5, 10), epsilons=(1.0, 4.0))
        assert all(r.value < 1.0 for r in rows)


class TestEstimationFigures:
    def test_fig04_proposed_beats_laplace(self):
        rows = fig04.run(TINY)
        series = rows_to_series(rows)
        for ds in ("BR", "MX"):
            for eps in TINY.epsilons:
                assert (
                    series[f"{ds}-numeric/hm"][eps]
                    < series[f"{ds}-numeric/laplace"][eps]
                )
                assert (
                    series[f"{ds}-categorical/hm"][eps]
                    < series[f"{ds}-categorical/oue-split"][eps]
                )

    def test_fig05_rows(self):
        rows = fig05.run(TINY, mus=(0.0,))
        series = rows_to_series(rows)
        assert "mu=0.00/hm" in series
        for eps in TINY.epsilons:
            assert series["mu=0.00/hm"][eps] < series["mu=0.00/laplace"][eps]

    def test_fig06_rows(self):
        rows = fig06.run(TINY)
        series = rows_to_series(rows)
        assert "uniform/pm" in series and "powerlaw/duchi" in series

    def test_fig07_error_decays_with_n(self):
        config = EstimationConfig(n=4_000, repeats=3, epsilons=(1.0,), seed=7)
        rows = fig07.run(config, user_counts=(2_000, 32_000), epsilon=1.0)
        series = rows_to_series(rows)
        for name in ("numeric/hm", "categorical/hm"):
            assert series[name][32_000.0] < series[name][2_000.0]

    def test_fig08_rows_cover_dimensions(self):
        rows = fig08.run(TINY, dimensions=(5, 10), epsilon=1.0)
        series = rows_to_series(rows)
        assert set(series["numeric/hm"]) == {5.0, 10.0}


class TestERMFigures:
    def test_fig09_shapes(self):
        rows = fig09.run(TINY_ERM)
        series = rows_to_series(rows)
        for ds in ("BR", "MX"):
            for method in ("non-private", "laplace", "duchi", "pm", "hm"):
                assert f"{ds}/{method}" in series
        # Misclassification rates are valid probabilities.
        assert all(0.0 <= r.value <= 1.0 for r in rows)

    def test_erm_unknown_task(self):
        from repro.experiments.erm import run_task

        with pytest.raises(ValueError):
            run_task("kmeans")


class TestCli:
    def test_main_lists_experiments(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out

    def test_main_unknown(self):
        from repro.experiments.__main__ import main

        assert main(["nope"]) == 2

    def test_main_runs_table1(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table1"]) == 0
        assert "Table I" in capsys.readouterr().out
