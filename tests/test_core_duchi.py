"""Tests for Duchi et al.'s 1-D (Alg. 1) and multi-dim (Alg. 3) solutions."""

import itertools
import math

import numpy as np
import pytest

from repro.core import DuchiMechanism, DuchiMultidimMechanism
from repro.theory.constants import duchi_b, duchi_cd


class TestOneDimensional:
    def test_output_is_binary(self, rng):
        mech = DuchiMechanism(1.0)
        out = mech.privatize(rng.uniform(-1, 1, 10_000), rng)
        assert set(np.unique(out)) == {-mech.bound, mech.bound}

    def test_bound_value(self, epsilon):
        e = math.exp(epsilon)
        assert DuchiMechanism(epsilon).bound == pytest.approx(
            (e + 1.0) / (e - 1.0)
        )

    def test_head_probability_endpoints(self, epsilon):
        mech = DuchiMechanism(epsilon)
        e = math.exp(epsilon)
        assert float(mech.head_probability(1.0)) == pytest.approx(
            e / (e + 1.0)
        )
        assert float(mech.head_probability(-1.0)) == pytest.approx(
            1.0 / (e + 1.0)
        )
        assert float(mech.head_probability(0.0)) == pytest.approx(0.5)

    def test_exact_unbiasedness_from_pmf(self, epsilon):
        """E[t*] computed from the exact pmf equals t for a grid of t."""
        mech = DuchiMechanism(epsilon)
        for t in np.linspace(-1, 1, 9):
            pmf = mech.output_probabilities(float(t))
            expected = sum(v * p for v, p in pmf.items())
            assert expected == pytest.approx(float(t), abs=1e-12)

    def test_exact_variance_from_pmf_matches_eq4(self, epsilon):
        mech = DuchiMechanism(epsilon)
        for t in (-1.0, -0.3, 0.0, 0.8):
            pmf = mech.output_probabilities(t)
            second_moment = sum(v**2 * p for v, p in pmf.items())
            assert second_moment - t**2 == pytest.approx(
                float(mech.variance(t)), abs=1e-12
            )

    def test_ldp_ratio_exact(self, epsilon):
        """max over outputs/inputs of the pmf ratio is exactly e^eps
        (attained at t = 1 vs t' = -1)."""
        mech = DuchiMechanism(epsilon)
        worst = 0.0
        for t, t_prime in itertools.product((-1.0, -0.5, 0.0, 0.5, 1.0), repeat=2):
            p = mech.output_probabilities(t)
            q = mech.output_probabilities(t_prime)
            for v in p:
                worst = max(worst, p[v] / q[v])
        assert worst <= math.exp(epsilon) * (1 + 1e-12)
        assert worst == pytest.approx(math.exp(epsilon), rel=1e-9)

    def test_variance_increases_as_magnitude_decreases(self):
        mech = DuchiMechanism(1.0)
        assert float(mech.variance(0.0)) > float(mech.variance(0.9))


class TestCd:
    def test_d1(self):
        assert duchi_cd(1) == pytest.approx(1.0)

    def test_d2(self):
        # (2^1 + binom(2,1)/2) / binom(1,1) = (2 + 1) / 1 = 3.
        assert duchi_cd(2) == pytest.approx(3.0)

    def test_d3(self):
        # 2^2 / binom(2,1) = 4 / 2 = 2.
        assert duchi_cd(3) == pytest.approx(2.0)

    def test_d4(self):
        # (2^3 + binom(4,2)/2) / binom(3,2) = (8 + 3) / 3.
        assert duchi_cd(4) == pytest.approx(11.0 / 3.0)

    def test_grows_like_sqrt_d(self):
        # C_d ~ sqrt(pi d / 2) asymptotically; check the trend.
        ratios = [duchi_cd(d) / math.sqrt(d) for d in (11, 41, 101)]
        assert max(ratios) - min(ratios) < 0.2

    def test_b_scales_cd(self, epsilon):
        e = math.exp(epsilon)
        assert duchi_b(epsilon, 5) == pytest.approx(
            (e + 1.0) / (e - 1.0) * duchi_cd(5)
        )


class TestMultidimensional:
    def test_output_entries_are_pm_b(self, rng):
        mech = DuchiMultidimMechanism(1.0, 4)
        out = mech.privatize(rng.uniform(-1, 1, (2_000, 4)), rng)
        magnitudes = np.unique(np.abs(out))
        assert magnitudes.shape == (1,)
        assert magnitudes[0] == pytest.approx(mech.b)

    def test_single_tuple_roundtrip(self, rng):
        mech = DuchiMultidimMechanism(1.0, 3)
        out = mech.privatize(np.zeros(3), rng)
        assert out.shape == (3,)

    @pytest.mark.parametrize("d", [1, 2, 3, 5, 8])
    def test_unbiased_per_coordinate(self, d, rng):
        mech = DuchiMultidimMechanism(2.0, d)
        t = np.tile(np.linspace(-0.8, 0.8, d), (60_000, 1))
        out = mech.privatize(t, rng)
        sem = mech.b / math.sqrt(60_000)
        assert np.all(np.abs(out.mean(axis=0) - t[0]) < 6.0 * sem)

    def test_empirical_variance_matches_eq13(self, rng):
        mech = DuchiMultidimMechanism(1.0, 4)
        t = np.tile([0.0, 0.5, -0.5, 1.0], (80_000, 1))
        out = mech.privatize(t, rng)
        for j in range(4):
            want = float(mech.variance(t[0, j]))
            assert np.var(out[:, j]) == pytest.approx(want, rel=0.05)

    @staticmethod
    def _exact_pmf(t, epsilon, d, tie_breaking):
        """Exact output pmf of Algorithm 3 for small d, both tie modes.

        "shared": boundary corners (s.v = 0) belong to both halfspaces
        (each halfspace has |interior| + |boundary| members, weight 1).
        "split": boundary corners carry weight 1/2 in each halfspace
        (total weight 2^{d-1} per halfspace).
        """
        e = math.exp(epsilon)
        outputs = list(itertools.product((-1.0, 1.0), repeat=d))
        probs = {s: 0.0 for s in outputs}
        for v in itertools.product((-1.0, 1.0), repeat=d):
            pv = 1.0
            for j in range(d):
                pv *= 0.5 + 0.5 * t[j] * v[j]
            if pv == 0.0:
                continue
            dots = {s: float(np.dot(s, v)) for s in outputs}
            tie_weight = 1.0 if tie_breaking == "shared" else 0.5
            w_plus = {
                s: (1.0 if dot > 0 else (tie_weight if dot == 0 else 0.0))
                for s, dot in dots.items()
            }
            w_minus = {
                s: (1.0 if dot < 0 else (tie_weight if dot == 0 else 0.0))
                for s, dot in dots.items()
            }
            total_plus = sum(w_plus.values())
            total_minus = sum(w_minus.values())
            for s in outputs:
                probs[s] += pv * (
                    (e / (e + 1.0)) * w_plus[s] / total_plus
                    + (1.0 / (e + 1.0)) * w_minus[s] / total_minus
                )
        return probs

    def test_split_ties_exactly_ldp_even_d(self):
        """The 'split' variant satisfies the eps ratio bound for d = 2."""
        epsilon, d = 1.0, 2
        e = math.exp(epsilon)
        grid = [(-1.0, 1.0), (0.0, 0.0), (0.5, -0.5), (1.0, 1.0), (1.0, -1.0)]
        for t, t_prime in itertools.product(grid, repeat=2):
            p = self._exact_pmf(t, epsilon, d, "split")
            q = self._exact_pmf(t_prime, epsilon, d, "split")
            for s in p:
                assert p[s] <= e * q[s] * (1 + 1e-9)

    def test_shared_ties_ratio_is_e_eps_plus_one_even_d(self):
        """Algorithm 3 as printed: for even d the worst-case ratio is
        e^eps + 1, not e^eps (boundary corners get mass from both
        branches).  This documents why the 'split' variant exists."""
        epsilon, d = 1.0, 2
        e = math.exp(epsilon)
        worst = 0.0
        grid = [(-1.0, 1.0), (1.0, 1.0), (1.0, -1.0), (-1.0, -1.0)]
        for t, t_prime in itertools.product(grid, repeat=2):
            p = self._exact_pmf(t, epsilon, d, "shared")
            q = self._exact_pmf(t_prime, epsilon, d, "shared")
            for s in p:
                if q[s] > 0:
                    worst = max(worst, p[s] / q[s])
        assert worst == pytest.approx(e + 1.0, rel=1e-9)

    def test_shared_ties_exactly_ldp_odd_d(self):
        """For odd d there are no ties; Algorithm 3 is exactly eps-LDP."""
        epsilon, d = 1.0, 3
        e = math.exp(epsilon)
        grid = [(-1.0, 1.0, 0.5), (0.0, 0.0, 0.0), (1.0, 1.0, 1.0),
                (1.0, -1.0, -1.0)]
        for t, t_prime in itertools.product(grid, repeat=2):
            p = self._exact_pmf(t, epsilon, d, "shared")
            q = self._exact_pmf(t_prime, epsilon, d, "shared")
            for s in p:
                assert p[s] <= e * q[s] * (1 + 1e-9)

    @pytest.mark.parametrize("tie_breaking", ["shared", "split"])
    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_exact_unbiasedness_small_d(self, tie_breaking, d):
        """E[t*] = t under each variant's matching constant B."""
        epsilon = 1.0
        mech = DuchiMultidimMechanism(epsilon, d, tie_breaking=tie_breaking)
        t = tuple(np.linspace(-0.8, 0.6, d))
        pmf = self._exact_pmf(t, epsilon, d, tie_breaking)
        expectation = np.zeros(d)
        for s, prob in pmf.items():
            expectation += mech.b * np.array(s) * prob
        assert np.allclose(expectation, t, atol=1e-12)

    def test_split_variant_unbiased_empirically(self, rng):
        mech = DuchiMultidimMechanism(2.0, 4, tie_breaking="split")
        t = np.tile([0.5, -0.5, 0.0, 0.9], (60_000, 1))
        out = mech.privatize(t, rng)
        sem = mech.b / math.sqrt(60_000)
        assert np.all(np.abs(out.mean(axis=0) - t[0]) < 6.0 * sem)

    def test_variants_coincide_for_odd_d(self):
        shared = DuchiMultidimMechanism(1.0, 5, tie_breaking="shared")
        split = DuchiMultidimMechanism(1.0, 5, tie_breaking="split")
        assert shared.b == split.b

    def test_invalid_tie_breaking_rejected(self):
        with pytest.raises(ValueError):
            DuchiMultidimMechanism(1.0, 2, tie_breaking="bogus")

    def test_estimate_means(self, rng):
        mech = DuchiMultidimMechanism(2.0, 3)
        t = rng.uniform(-1, 1, (30_000, 3))
        est = mech.estimate_means(mech.privatize(t, rng))
        assert np.all(np.abs(est - t.mean(axis=0)) < 0.15)

    def test_estimate_means_validates_input(self):
        mech = DuchiMultidimMechanism(1.0, 3)
        with pytest.raises(ValueError):
            mech.estimate_means(np.empty((0, 3)))

    def test_wrong_width_rejected(self, rng):
        mech = DuchiMultidimMechanism(1.0, 3)
        with pytest.raises(ValueError):
            mech.privatize(np.zeros((5, 4)), rng)
