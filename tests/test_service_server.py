"""End-to-end service tests against a live local server.

Each test boots a real :class:`IngestionServer` on an ephemeral
localhost port (asyncio loop in a daemon thread) and drives it through
the :class:`ServiceClient` SDK — the full client → wire → HTTP →
accountant → accumulator → estimate path, including kill-and-resume
from the latest snapshot.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.data import make_br_like
from repro.protocol import Protocol
from repro.service import (
    IngestionServer,
    OverBudgetError,
    ServiceClient,
    ServiceError,
    SnapshotStore,
    wire,
)

SEED = 77
N = 200


def _cases():
    rng = np.random.default_rng(4)
    dataset = make_br_like(N, rng=np.random.default_rng(5))
    return {
        "mean": (Protocol.numeric_mean(1.0, "hm"), rng.uniform(-1, 1, N)),
        "frequency": (
            Protocol.frequency(1.0, domain=10, oracle="oue"),
            rng.integers(0, 10, N),
        ),
        "frequency-olh": (
            Protocol.frequency(1.0, domain=10, oracle="olh"),
            rng.integers(0, 10, N),
        ),
        "histogram": (
            Protocol.histogram(2.0, bins=8),
            rng.uniform(-1, 1, N),
        ),
        "multidim-numeric": (
            Protocol.multidim(4.0, d=4, mechanism="hm"),
            rng.uniform(-1, 1, (N, 4)),
        ),
        "multidim-mixed": (
            Protocol.multidim(4.0, schema=dataset.schema, mechanism="pm"),
            dataset,
        ),
    }


def _assert_estimates_bitwise_equal(a, b):
    if hasattr(a, "histogram"):
        np.testing.assert_array_equal(a.histogram, b.histogram)
        np.testing.assert_array_equal(a.raw, b.raw)
        return
    if hasattr(a, "frequencies"):
        assert a.means == b.means
        for key in a.frequencies:
            np.testing.assert_array_equal(
                a.frequencies[key], b.frequencies[key]
            )
        return
    np.testing.assert_array_equal(np.asarray(a), np.asarray(b))


@pytest.fixture
def serve():
    """Factory fixture: boot servers in threads, stop them at teardown."""
    running = []

    def _boot(*args, **kwargs):
        server = IngestionServer(*args, **kwargs).run_in_thread()
        running.append(server)
        return server

    yield _boot
    for server in running:
        server.stop()


def _users(n, prefix="u"):
    return [f"{prefix}{i}" for i in range(n)]


class TestEndToEnd:
    @pytest.mark.parametrize("name", sorted(_cases()))
    def test_estimate_matches_protocol_run_bitwise(self, serve, name):
        protocol, values = _cases()[name]
        server = serve(protocol)
        client = ServiceClient("127.0.0.1", server.port)
        client.submit(values, users=_users(N), rng=SEED)
        _assert_estimates_bitwise_equal(
            client.estimate(), protocol.run(values, rng=SEED)
        )

    def test_multiple_batches_fold_in_arrival_order(self, serve):
        protocol, values = _cases()["multidim-numeric"]
        server = serve(protocol)
        client = ServiceClient("127.0.0.1", server.port)
        reference = protocol.server()
        encoder = protocol.client()
        for i in range(4):
            chunk = values[i * 50 : (i + 1) * 50]
            reports = encoder.encode_batch(chunk, np.random.default_rng(i))
            reference.absorb(reports)
            client.submit_reports(
                reports, users=_users(50, prefix=f"b{i}-")
            )
        _assert_estimates_bitwise_equal(
            client.estimate(), reference.estimate()
        )
        assert client.healthz()["reports"] == N

    def test_spec_endpoint_rebuilds_identical_protocol(self, serve):
        protocol, _ = _cases()["frequency"]
        server = serve(protocol)
        client = ServiceClient("127.0.0.1", server.port)
        assert client.protocol.spec == protocol.spec
        assert client.fingerprint == server.fingerprint


class TestBudgetEnforcement:
    def test_over_budget_users_rejected_with_429(self, serve):
        protocol, values = _cases()["mean"]
        server = serve(protocol)  # lifetime defaults to spec epsilon
        client = ServiceClient("127.0.0.1", server.port)
        client.submit(values[:50], users=_users(50), rng=0)
        with pytest.raises(OverBudgetError) as excinfo:
            client.submit(values[:50], users=_users(50), rng=1)
        assert excinfo.value.status == 429
        assert set(excinfo.value.rejected_users) == set(_users(50))

    def test_rejection_is_atomic(self, serve):
        """One exhausted user poisons the whole batch: nothing absorbed,
        nobody charged."""
        protocol, values = _cases()["mean"]
        server = serve(protocol)
        client = ServiceClient("127.0.0.1", server.port)
        client.submit(values[:1], users=["veteran"], rng=0)
        before = client.healthz()
        with pytest.raises(OverBudgetError) as excinfo:
            client.submit(
                values[:3], users=["fresh-a", "veteran", "fresh-b"], rng=1
            )
        assert excinfo.value.rejected_users == ["veteran"]
        after = client.healthz()
        assert after["reports"] == before["reports"]
        assert after["users_charged"] == before["users_charged"]
        # The fresh users still have full budget: resubmitting without
        # the exhausted user succeeds.
        client.submit(values[:2], users=["fresh-a", "fresh-b"], rng=2)

    def test_duplicate_user_in_batch_charged_at_multiplicity(self, serve):
        """A user appearing twice in one batch must afford 2x epsilon —
        checked up front, so the batch is rejected cleanly (no partial
        charge, no 500) when they cannot."""
        protocol, values = _cases()["mean"]
        server = serve(protocol)  # lifetime == epsilon: 2x never fits
        client = ServiceClient("127.0.0.1", server.port)
        with pytest.raises(OverBudgetError) as excinfo:
            client.submit(values[:2], users=["dup", "dup"], rng=0)
        assert excinfo.value.rejected_users == ["dup"]
        health = client.healthz()
        assert health["reports"] == 0
        assert health["users_charged"] == 0
        # With room for both reports the batch is accepted and the user
        # is charged for each.
        roomy = serve(protocol, lifetime_epsilon=2.0)
        client2 = ServiceClient("127.0.0.1", roomy.port)
        client2.submit(values[:2], users=["dup", "dup"], rng=0)
        with pytest.raises(OverBudgetError):
            client2.submit(values[:1], users=["dup"], rng=1)

    def test_failed_absorb_does_not_consume_budget(self, serve):
        """Reports that decode but violate the protocol shape must not
        charge anyone: the corrected resubmission still has budget."""
        protocol, _ = _cases()["multidim-numeric"]  # expects (n, 4)
        server = serve(protocol)
        client = ServiceClient("127.0.0.1", server.port)
        with pytest.raises(ServiceError) as excinfo:
            client.submit_reports(np.zeros((3, 2)), users=_users(3))
        assert excinfo.value.status == 400
        assert client.healthz()["users_charged"] == 0
        # Same users, well-formed reports: accepted.
        good = client.encode(np.zeros((3, 4)), rng=0)
        assert client.submit_reports(good, _users(3))["status"] == "accepted"

    def test_higher_lifetime_allows_repeat_reports(self, serve):
        protocol, values = _cases()["mean"]
        server = serve(protocol, lifetime_epsilon=2.0)
        client = ServiceClient("127.0.0.1", server.port)
        client.submit(values[:10], users=_users(10), rng=0)
        client.submit(values[:10], users=_users(10), rng=1)  # 2nd eps=1.0
        with pytest.raises(OverBudgetError):
            client.submit(values[:10], users=_users(10), rng=2)


class TestIdempotency:
    def test_duplicate_key_not_double_counted(self, serve):
        protocol, values = _cases()["frequency"]
        server = serve(protocol)
        client = ServiceClient("127.0.0.1", server.port)
        reports = client.encode(values[:40], rng=3)
        first = client.submit_reports(reports, users=_users(40))
        est = client.estimate()
        # Same content -> same derived key -> duplicate, even from a
        # fresh SDK instance (e.g. a crashed-and-rerun client script).
        retry_client = ServiceClient("127.0.0.1", server.port)
        second = retry_client.submit_reports(reports, users=_users(40))
        assert first["status"] == "accepted"
        assert second["status"] == "duplicate"
        _assert_estimates_bitwise_equal(client.estimate(), est)
        assert client.healthz()["reports"] == 40

    def test_explicit_key(self, serve):
        protocol, values = _cases()["mean"]
        server = serve(protocol)
        client = ServiceClient("127.0.0.1", server.port)
        client.submit(values[:5], users=_users(5), rng=0,
                      idempotency_key="batch-0")
        dup = client.submit(
            values[5:10], users=_users(5, "other"), rng=1,
            idempotency_key="batch-0",
        )
        assert dup["status"] == "duplicate"


class TestRejections:
    def test_mismatched_fingerprint_rejected(self, serve):
        protocol, values = _cases()["mean"]
        server = serve(protocol)
        client = ServiceClient("127.0.0.1", server.port)
        envelope = wire.pack(
            {
                "users": ["u0"],
                "idempotency_key": None,
                "reports": wire.encode_reports(np.zeros(1)),
            },
            "0" * 64,
        )
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/report", envelope)
        assert excinfo.value.status == 409
        assert excinfo.value.payload["error"] == "spec_mismatch"
        assert client.healthz()["reports"] == 0

    def test_unknown_wire_version_rejected(self, serve):
        protocol, _ = _cases()["mean"]
        server = serve(protocol)
        client = ServiceClient("127.0.0.1", server.port)
        envelope = wire.pack({"users": ["u0"]}, server.fingerprint)
        envelope["wire_version"] = 99
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/report", envelope)
        assert excinfo.value.status == 400

    def test_user_report_count_mismatch_rejected(self, serve):
        protocol, values = _cases()["mean"]
        server = serve(protocol)
        client = ServiceClient("127.0.0.1", server.port)
        with pytest.raises(ServiceError) as excinfo:
            client.submit(values[:5], users=_users(3), rng=0)
        assert excinfo.value.status == 400

    def test_estimate_before_any_report_is_409(self, serve):
        protocol, _ = _cases()["mean"]
        server = serve(protocol)
        client = ServiceClient("127.0.0.1", server.port)
        with pytest.raises(ServiceError) as excinfo:
            client.estimate()
        assert excinfo.value.status == 409

    def test_unknown_path_404_and_wrong_method_405(self, serve):
        protocol, _ = _cases()["mean"]
        server = serve(protocol)
        client = ServiceClient("127.0.0.1", server.port)
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/report")
        assert excinfo.value.status == 405


class TestCrashResume:
    def test_kill_and_resume_is_bitwise_equal(self, serve, tmp_path):
        protocol, values = _cases()["multidim-numeric"]
        encoder = protocol.client()
        batches = [
            (
                encoder.encode_batch(
                    values[i * 40 : (i + 1) * 40], np.random.default_rng(i)
                ),
                _users(40, prefix=f"b{i}-"),
            )
            for i in range(5)
        ]
        uninterrupted = protocol.server()
        for reports, _ in batches:
            uninterrupted.absorb(reports)

        server = serve(
            protocol, store=SnapshotStore(tmp_path), checkpoint_every=1
        )
        client = ServiceClient("127.0.0.1", server.port)
        for reports, users in batches[:3]:
            client.submit_reports(reports, users)
        server.stop()  # abrupt: no final checkpoint, crash-equivalent

        resumed = serve(
            protocol, store=SnapshotStore(tmp_path), checkpoint_every=1
        )
        client2 = ServiceClient("127.0.0.1", resumed.port)
        health = client2.healthz()
        assert health["resumed_from_snapshot"] == 3
        assert health["reports"] == 120
        for reports, users in batches[3:]:
            client2.submit_reports(reports, users)
        _assert_estimates_bitwise_equal(
            client2.estimate(), uninterrupted.estimate()
        )

    def test_budgets_survive_restart(self, serve, tmp_path):
        protocol, values = _cases()["mean"]
        server = serve(
            protocol, store=SnapshotStore(tmp_path), checkpoint_every=1
        )
        client = ServiceClient("127.0.0.1", server.port)
        client.submit(values[:20], users=_users(20), rng=0)
        server.stop()

        resumed = serve(
            protocol, store=SnapshotStore(tmp_path), checkpoint_every=1
        )
        client2 = ServiceClient("127.0.0.1", resumed.port)
        with pytest.raises(OverBudgetError):
            client2.submit(values[:20], users=_users(20), rng=1)

    def test_idempotency_keys_survive_restart(self, serve, tmp_path):
        protocol, values = _cases()["mean"]
        server = serve(
            protocol, store=SnapshotStore(tmp_path), checkpoint_every=1
        )
        client = ServiceClient("127.0.0.1", server.port)
        reports = client.encode(values[:10], rng=0)
        client.submit_reports(reports, _users(10), idempotency_key="k1")
        server.stop()

        resumed = serve(
            protocol, store=SnapshotStore(tmp_path), checkpoint_every=1
        )
        client2 = ServiceClient("127.0.0.1", resumed.port)
        dup = client2.submit_reports(
            reports, _users(10, "new"), idempotency_key="k1"
        )
        assert dup["status"] == "duplicate"
        assert client2.healthz()["reports"] == 10

    def test_resume_refuses_foreign_snapshot(self, tmp_path):
        protocol, values = _cases()["mean"]
        server = IngestionServer(
            protocol, store=SnapshotStore(tmp_path), checkpoint_every=1
        ).run_in_thread()
        try:
            client = ServiceClient("127.0.0.1", server.port)
            client.submit(values[:5], users=_users(5), rng=0)
        finally:
            server.stop()
        other = Protocol.numeric_mean(2.0, "pm")
        with pytest.raises(wire.SpecMismatchError):
            IngestionServer(other, store=SnapshotStore(tmp_path))


class TestCommandLine:
    def test_cli_serves_and_checkpoints_on_sigint(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(Protocol.frequency(1.0, domain=6).spec.to_dict())
        )
        env = dict(os.environ)
        root = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = (
            f"{root / 'src'}{os.pathsep}{env.get('PYTHONPATH', '')}"
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro.service",
                "--spec", str(spec_path),
                "--port", "0",
                "--snapshot-dir", str(tmp_path / "snaps"),
                "--checkpoint-every", "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "repro.service:" in banner
            port = int(banner.split("http://127.0.0.1:")[1].split()[0])
            client = ServiceClient("127.0.0.1", port, retries=5)
            client.submit(
                np.array([1, 2, 3, 1]), users=_users(4), rng=0
            )
            assert client.healthz()["reports"] == 4
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                out, _ = proc.communicate(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                out, _ = proc.communicate()
        assert proc.returncode == 0, out
        assert "final checkpoint" in out
        assert SnapshotStore(tmp_path / "snaps").latest_sequence() == 1

    def test_cli_requires_spec_or_campaigns(self):
        from repro.service.__main__ import main

        with pytest.raises(SystemExit):
            main([])
