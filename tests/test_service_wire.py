"""Wire-codec tests: bitwise round-trips for every protocol kind.

Every report container, accumulator snapshot and estimate must survive
``encode -> json -> decode`` bitwise — the service's correctness proof
reduces to "the wire changes nothing".
"""

import json

import numpy as np
import pytest

from repro.frequency.olh import OLHReports
from repro.protocol import PROTOCOL_KINDS, Protocol, SampledNumericReports
from repro.service import wire

SEED = 20190412
N = 300


def _mixed_case():
    from repro.data import make_br_like

    dataset = make_br_like(N, rng=np.random.default_rng(2))
    return (
        Protocol.multidim(4.0, schema=dataset.schema, mechanism="pm"),
        dataset,
    )


def _protocols():
    """One protocol + workload per kind (plus oracle report variants)."""
    rng = np.random.default_rng(1)
    return {
        "mean": (Protocol.numeric_mean(1.0, "hm"), rng.uniform(-1, 1, N)),
        "frequency": (
            Protocol.frequency(1.0, domain=12, oracle="oue"),
            rng.integers(0, 12, N),
        ),
        "frequency-grr": (
            Protocol.frequency(1.0, domain=12, oracle="grr"),
            rng.integers(0, 12, N),
        ),
        "frequency-olh": (
            Protocol.frequency(1.0, domain=12, oracle="olh"),
            rng.integers(0, 12, N),
        ),
        "histogram": (
            Protocol.histogram(2.0, bins=8, oracle="sue"),
            rng.uniform(-1, 1, N),
        ),
        "multidim-numeric": (
            Protocol.multidim(4.0, d=6, mechanism="hm"),
            rng.uniform(-1, 1, (N, 6)),
        ),
        "multidim-mixed": _mixed_case(),
    }


def _workload(name, protocol, values):
    return values


def _json_round_trip(obj):
    return json.loads(json.dumps(obj))


def _assert_reports_bitwise_equal(a, b):
    if isinstance(a, SampledNumericReports):
        assert isinstance(b, SampledNumericReports)
        assert (a.d, a.k) == (b.d, b.k)
        np.testing.assert_array_equal(a.cols, b.cols)
        assert a.cols.dtype == b.cols.dtype
        np.testing.assert_array_equal(a.values, b.values)
        assert a.values.dtype == b.values.dtype
        return
    if isinstance(a, OLHReports):
        assert isinstance(b, OLHReports)
        np.testing.assert_array_equal(a.seeds, b.seeds)
        assert a.seeds.dtype == b.seeds.dtype
        np.testing.assert_array_equal(a.buckets, b.buckets)
        return
    if hasattr(a, "categorical"):  # MixedReports
        assert a.n == b.n
        np.testing.assert_array_equal(a.numeric, b.numeric)
        assert set(a.categorical) == set(b.categorical)
        for key in a.categorical:
            _assert_reports_bitwise_equal(
                a.categorical[key], b.categorical[key]
            )
        return
    a, b = np.asarray(a), np.asarray(b)
    assert a.dtype == b.dtype
    np.testing.assert_array_equal(a, b)


def _assert_estimates_bitwise_equal(a, b):
    if hasattr(a, "histogram"):  # HistogramEstimate
        np.testing.assert_array_equal(a.histogram, b.histogram)
        np.testing.assert_array_equal(a.raw, b.raw)
        np.testing.assert_array_equal(a.edges, b.edges)
        return
    if hasattr(a, "frequencies"):  # MixedEstimates
        assert a.means == b.means
        assert set(a.frequencies) == set(b.frequencies)
        for key in a.frequencies:
            np.testing.assert_array_equal(
                a.frequencies[key], b.frequencies[key]
            )
        return
    np.testing.assert_array_equal(np.asarray(a), np.asarray(b))


class TestArrayCodec:
    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(12, dtype=np.int64).reshape(3, 4),
            np.array([1.5, np.nan, np.inf, -np.inf, -0.0]),
            np.array([[1, 0, 1]], dtype=np.uint8),
            np.array([2**63, 1], dtype=np.uint64),
            np.zeros((0, 5)),
            np.array(3.25),
        ],
    )
    def test_bitwise_round_trip(self, arr):
        decoded = wire.decode_array(_json_round_trip(wire.encode_array(arr)))
        assert decoded.dtype == arr.dtype
        assert decoded.shape == arr.shape
        np.testing.assert_array_equal(decoded, arr)

    def test_nan_payloads_survive_bitwise(self):
        arr = np.array([np.nan])
        decoded = wire.decode_array(wire.encode_array(arr))
        assert np.isnan(decoded[0])

    def test_decoded_array_is_writable(self):
        decoded = wire.decode_array(wire.encode_array(np.arange(3.0)))
        decoded += 1.0  # absorb paths use in-place accumulation

    def test_malformed_payload_rejected(self):
        with pytest.raises(wire.WireFormatError):
            wire.decode_array({"dtype": "f8", "shape": [2]})
        with pytest.raises(wire.WireFormatError):
            wire.decode_array(
                {"dtype": "f8", "shape": [3], "data": "AAAAAAAAAAA="}
            )


class TestReportCodec:
    @pytest.mark.parametrize("name", sorted(_protocols()))
    def test_bitwise_round_trip_per_kind(self, name):
        protocol, values = _protocols()[name]
        workload = _workload(name, protocol, values)
        reports = protocol.client().encode_batch(
            workload, np.random.default_rng(SEED)
        )
        decoded = wire.decode_reports(
            _json_round_trip(wire.encode_reports(reports))
        )
        _assert_reports_bitwise_equal(reports, decoded)
        # Absorbing the decoded reports yields the bitwise-same estimate.
        _assert_estimates_bitwise_equal(
            protocol.server().absorb(reports).estimate(),
            protocol.server().absorb(decoded).estimate(),
        )

    def test_every_protocol_kind_is_covered(self):
        covered = {
            name.split("-", 1)[0] if name.startswith("frequency") else name
            for name in _protocols()
        }
        assert set(PROTOCOL_KINDS) <= covered

    def test_report_count(self):
        protocol, values = _protocols()["multidim-numeric"]
        reports = protocol.client().encode_batch(values, 0)
        assert wire.report_count(reports) == N
        mixed_protocol, dataset = _protocols()["multidim-mixed"]
        mixed = mixed_protocol.client().encode_batch(dataset, 0)
        assert wire.report_count(mixed) == N

    def test_unknown_payload_type_rejected(self):
        with pytest.raises(wire.WireFormatError):
            wire.decode_reports({"type": "carrier-pigeon"})


class TestAccumulatorStateCodec:
    @pytest.mark.parametrize("name", sorted(_protocols()))
    def test_snapshot_round_trip_bitwise(self, name):
        protocol, values = _protocols()[name]
        workload = _workload(name, protocol, values)
        acc = protocol.server().absorb(
            protocol.client().encode_batch(workload, np.random.default_rng(7))
        )
        encoded = _json_round_trip(wire.encode_accumulator_state(acc))
        restored = wire.decode_accumulator_state(protocol.server(), encoded)
        assert restored.count == acc.count
        _assert_estimates_bitwise_equal(restored.estimate(), acc.estimate())

    def test_restored_accumulator_keeps_absorbing(self):
        protocol, values = _protocols()["mean"]
        encoder = protocol.client()
        first = encoder.encode_batch(values[:100], np.random.default_rng(0))
        second = encoder.encode_batch(values[100:], np.random.default_rng(1))

        uninterrupted = protocol.server().absorb(first).absorb(second)
        restored = wire.decode_accumulator_state(
            protocol.server(),
            wire.encode_accumulator_state(protocol.server().absorb(first)),
        ).absorb(second)
        assert restored.estimate() == uninterrupted.estimate()


class TestEstimateCodec:
    @pytest.mark.parametrize("name", sorted(_protocols()))
    def test_round_trip(self, name):
        protocol, values = _protocols()[name]
        workload = _workload(name, protocol, values)
        estimate = protocol.run(workload, rng=SEED)
        decoded = wire.decode_estimate(
            _json_round_trip(wire.encode_estimate(estimate))
        )
        _assert_estimates_bitwise_equal(estimate, decoded)


class TestEnvelope:
    def test_pack_unpack(self):
        fingerprint = wire.spec_fingerprint(
            Protocol.numeric_mean(1.0).spec
        )
        payload = wire.unpack(
            _json_round_trip(wire.pack({"x": 1}, fingerprint)), fingerprint
        )
        assert payload == {"x": 1}

    def test_unknown_wire_version_rejected(self):
        envelope = wire.pack({}, "f" * 64)
        envelope["wire_version"] = 99
        with pytest.raises(wire.WireFormatError, match="wire_version"):
            wire.unpack(envelope, "f" * 64)

    def test_fingerprint_mismatch_rejected(self):
        spec_a = Protocol.numeric_mean(1.0, "hm").spec
        spec_b = Protocol.numeric_mean(1.0, "pm").spec
        envelope = wire.pack({}, wire.spec_fingerprint(spec_a))
        with pytest.raises(wire.SpecMismatchError):
            wire.unpack(envelope, wire.spec_fingerprint(spec_b))

    def test_fingerprint_is_deterministic_and_discriminating(self):
        spec = Protocol.frequency(1.0, domain=8).spec
        assert wire.spec_fingerprint(spec) == wire.spec_fingerprint(spec)
        assert wire.spec_fingerprint(spec) != wire.spec_fingerprint(
            Protocol.frequency(1.1, domain=8).spec
        )
        # Dict payloads fingerprint identically to the spec object.
        assert wire.spec_fingerprint(spec.to_dict()) == (
            wire.spec_fingerprint(spec)
        )
