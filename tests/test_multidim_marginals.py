"""Tests for pairwise marginal estimation under LDP."""

import numpy as np
import pytest

from repro.data.schema import (
    CategoricalAttribute,
    Dataset,
    NumericAttribute,
    Schema,
)
from repro.multidim import (
    MarginalTable,
    PairwiseMarginalCollector,
    true_marginal_table,
)


def _correlated_dataset(n, rng):
    """a -> b strongly correlated, c independent of both."""
    a = rng.choice(3, n, p=[0.5, 0.3, 0.2])
    conditional = np.array(
        [[0.7, 0.2, 0.1], [0.2, 0.6, 0.2], [0.1, 0.2, 0.7]]
    )
    u = rng.random(n)
    cumulative = conditional.cumsum(axis=1)
    b = (u[:, None] > cumulative[a]).sum(axis=1)
    c = rng.choice(2, n)
    schema = Schema(
        [
            CategoricalAttribute("a", 3),
            CategoricalAttribute("b", 3),
            CategoricalAttribute("c", 2),
        ]
    )
    return Dataset(schema, {"a": a, "b": b, "c": c})


class TestMarginalTable:
    def _table(self):
        return MarginalTable(
            "a",
            "b",
            np.array([[0.3, 0.1], [0.1, 0.5]]),
        )

    def test_marginals(self):
        table = self._table()
        assert np.allclose(table.row_marginal(), [0.4, 0.6])
        assert np.allclose(table.col_marginal(), [0.4, 0.6])

    def test_conditional(self):
        table = self._table()
        assert np.allclose(table.conditional(0), [0.75, 0.25])

    def test_conditional_empty_row_uniform(self):
        table = MarginalTable("a", "b", np.array([[0.0, 0.0], [0.4, 0.6]]))
        assert np.allclose(table.conditional(0), [0.5, 0.5])

    def test_mutual_information_independent_is_zero(self):
        independent = np.outer([0.4, 0.6], [0.3, 0.7])
        table = MarginalTable("a", "b", independent)
        assert table.mutual_information() == pytest.approx(0.0, abs=1e-12)

    def test_mutual_information_positive_for_dependence(self):
        assert self._table().mutual_information() > 0.05

    def test_cramers_v_range(self):
        assert 0.0 <= self._table().cramers_v() <= 1.0

    def test_cramers_v_perfect_dependence(self):
        table = MarginalTable("a", "b", np.array([[0.5, 0.0], [0.0, 0.5]]))
        assert table.cramers_v() == pytest.approx(1.0)


class TestTrueMarginal:
    def test_matches_manual_count(self, rng):
        ds = _correlated_dataset(10_000, rng)
        table = true_marginal_table(ds, "a", "c")
        assert table.table.sum() == pytest.approx(1.0)
        manual = np.mean((ds.columns["a"] == 0) & (ds.columns["c"] == 1))
        assert table.table[0, 1] == pytest.approx(manual)

    def test_numeric_attribute_rejected(self, rng):
        schema = Schema(
            [NumericAttribute("x"), CategoricalAttribute("c", 2)]
        )
        ds = Dataset(
            schema,
            {"x": rng.uniform(-1, 1, 10), "c": rng.integers(0, 2, 10)},
        )
        with pytest.raises(ValueError):
            true_marginal_table(ds, "x", "c")


class TestPairwiseCollector:
    def test_default_pairs_all_categorical(self, rng):
        ds = _correlated_dataset(100, rng)
        collector = PairwiseMarginalCollector(ds.schema, 1.0)
        assert set(collector.pairs) == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_explicit_pairs(self, rng):
        ds = _correlated_dataset(100, rng)
        collector = PairwiseMarginalCollector(
            ds.schema, 1.0, pairs=[("a", "b")]
        )
        assert collector.pairs == [("a", "b")]

    def test_numeric_pair_rejected(self, rng):
        schema = Schema(
            [NumericAttribute("x"), CategoricalAttribute("c", 2)]
        )
        with pytest.raises(ValueError, match="categorical"):
            PairwiseMarginalCollector(schema, 1.0, pairs=[("x", "c")])

    def test_empty_pairs_rejected(self, rng):
        schema = Schema(
            [NumericAttribute("x"), NumericAttribute("y")]
        )
        with pytest.raises(ValueError):
            PairwiseMarginalCollector(schema, 1.0)

    def test_schema_mismatch_rejected(self, rng):
        ds = _correlated_dataset(100, rng)
        collector = PairwiseMarginalCollector(ds.schema, 1.0)
        with pytest.raises(ValueError):
            collector.collect(ds.select_attributes(["a", "b"]), rng)

    def test_tables_are_valid_joints(self, rng):
        ds = _correlated_dataset(20_000, rng)
        tables = PairwiseMarginalCollector(ds.schema, 2.0).collect(ds, rng)
        for table in tables.values():
            assert table.table.sum() == pytest.approx(1.0)
            assert np.all(table.table >= 0.0)

    def test_recovers_correlated_joint(self, rng):
        ds = _correlated_dataset(150_000, rng)
        tables = PairwiseMarginalCollector(
            ds.schema, 2.0, pairs=[("a", "b")]
        ).collect(ds, rng)
        truth = true_marginal_table(ds, "a", "b")
        tv = 0.5 * np.abs(tables[("a", "b")].table - truth.table).sum()
        assert tv < 0.05

    def test_detects_dependence_structure(self, rng):
        """MI ranking: the correlated pair scores far above the
        independent pairs."""
        ds = _correlated_dataset(150_000, rng)
        tables = PairwiseMarginalCollector(ds.schema, 2.0).collect(ds, rng)
        mi_ab = tables[("a", "b")].mutual_information()
        mi_ac = tables[("a", "c")].mutual_information()
        mi_bc = tables[("b", "c")].mutual_information()
        assert mi_ab > 5 * max(mi_ac, mi_bc)

    def test_marginals_consistent_with_oneway(self, rng):
        """Row/column marginals of the joint estimate agree with the
        dataset's exact 1-way frequencies within noise."""
        ds = _correlated_dataset(150_000, rng)
        tables = PairwiseMarginalCollector(
            ds.schema, 4.0, pairs=[("a", "b")]
        ).collect(ds, rng)
        truth = ds.true_categorical_frequencies()
        assert np.all(
            np.abs(tables[("a", "b")].row_marginal() - truth["a"]) < 0.03
        )
        assert np.all(
            np.abs(tables[("a", "b")].col_marginal() - truth["b"]) < 0.03
        )

    @pytest.mark.parametrize("oracle", ["grr", "oue"])
    def test_oracle_choices(self, oracle, rng):
        ds = _correlated_dataset(40_000, rng)
        tables = PairwiseMarginalCollector(
            ds.schema, 2.0, pairs=[("a", "c")], oracle=oracle
        ).collect(ds, rng)
        truth = true_marginal_table(ds, "a", "c")
        tv = 0.5 * np.abs(tables[("a", "c")].table - truth.table).sum()
        assert tv < 0.1
