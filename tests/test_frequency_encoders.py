"""Tests for the categorical encoders."""

import numpy as np
import pytest

from repro.frequency.encoders import dummy_encode, one_hot, true_frequencies


class TestOneHot:
    def test_shape_and_values(self):
        out = one_hot([0, 2, 1], 3)
        assert out.shape == (3, 3)
        assert np.array_equal(
            out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_rows_sum_to_one(self, rng):
        values = rng.integers(0, 5, 100)
        assert np.all(one_hot(values, 5).sum(axis=1) == 1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            one_hot([3], 3)
        with pytest.raises(ValueError):
            one_hot([-1], 3)

    def test_non_integer_rejected(self):
        with pytest.raises(ValueError):
            one_hot([0.5], 3)

    def test_integer_valued_floats_accepted(self):
        assert one_hot([1.0, 0.0], 2).shape == (2, 2)

    def test_k_too_small_rejected(self):
        with pytest.raises(ValueError):
            one_hot([0], 1)


class TestDummyEncode:
    def test_drops_last_column(self):
        out = dummy_encode([0, 1, 2], 3)
        assert out.shape == (3, 2)
        assert np.array_equal(out, [[1, 0], [0, 1], [0, 0]])

    def test_last_category_is_zero_row(self):
        out = dummy_encode([2, 2], 3)
        assert np.all(out == 0.0)

    def test_binary_attribute_single_column(self):
        out = dummy_encode([0, 1, 0], 2)
        assert out.shape == (3, 1)
        assert np.array_equal(out.ravel(), [1, 0, 1])


class TestTrueFrequencies:
    def test_values(self):
        freqs = true_frequencies([0, 0, 1, 2], 3)
        assert np.allclose(freqs, [0.5, 0.25, 0.25])

    def test_sums_to_one(self, rng):
        values = rng.integers(0, 7, 1000)
        assert true_frequencies(values, 7).sum() == pytest.approx(1.0)

    def test_covers_unseen_values(self):
        freqs = true_frequencies([0, 0], 4)
        assert freqs.shape == (4,)
        assert np.allclose(freqs, [1.0, 0, 0, 0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            true_frequencies([], 3)
