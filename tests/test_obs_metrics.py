"""Golden-file tests for the Prometheus text exposition renderer.

The exposition body is a wire format scraped by a real Prometheus —
these tests pin it byte-for-byte: HELP/TYPE headers, label escaping
and ordering, histogram ``_bucket``/``_sum``/``_count`` invariants,
and numeric formatting (``+Inf``, integers without ``.0``).
"""

import math
import threading

import pytest

from repro.obs.metrics import (
    CONTENT_TYPE_LATEST,
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_value,
    null_registry,
)


class TestNameValidation:
    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name", "help")
        with pytest.raises(ValueError):
            registry.counter("0leading", "help")
        with pytest.raises(ValueError):
            registry.counter("__reserved", "help")

    def test_invalid_label_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("ok_name", "help", labels=("bad-label",))
        with pytest.raises(ValueError):
            registry.counter("ok_name", "help", labels=("__reserved",))
        with pytest.raises(ValueError):
            registry.histogram("ok_hist", "help", labels=("le",))
        with pytest.raises(ValueError):
            registry.counter("ok_dupe", "help", labels=("a", "a"))

    def test_colons_allowed_in_metric_names(self):
        registry = MetricsRegistry()
        registry.counter("ns:metric_total", "recording-rule style")
        assert "ns:metric_total" in registry.render()


class TestValueFormatting:
    def test_integers_render_without_decimal_point(self):
        assert format_value(3.0) == "3"
        assert format_value(0.0) == "0"
        assert format_value(-2.0) == "-2"

    def test_floats_render_with_full_precision(self):
        assert format_value(0.005) == "0.005"
        assert float(format_value(1 / 3)) == 1 / 3

    def test_special_values_spelled_the_prometheus_way(self):
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"
        assert format_value(math.nan) == "NaN"


class TestCounterGolden:
    def test_unlabelled_counter_exposition(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_things_total", "Things seen.")
        counter.inc()
        counter.inc(2)
        assert registry.render() == (
            "# HELP repro_things_total Things seen.\n"
            "# TYPE repro_things_total counter\n"
            "repro_things_total 3\n"
        )

    def test_labelled_counter_children_sorted_by_value(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "repro_req_total", "Requests.", labels=("endpoint", "status")
        )
        # Created out of order: rendering must sort children.
        counter.labels(endpoint="/spec", status="200").inc()
        counter.labels(endpoint="/report", status="429").inc(4)
        counter.labels(endpoint="/report", status="200").inc(2)
        assert registry.render() == (
            "# HELP repro_req_total Requests.\n"
            "# TYPE repro_req_total counter\n"
            'repro_req_total{endpoint="/report",status="200"} 2\n'
            'repro_req_total{endpoint="/report",status="429"} 4\n'
            'repro_req_total{endpoint="/spec",status="200"} 1\n'
        )

    def test_counter_rejects_decrease_but_allows_restore(self):
        counter = Counter("repro_x_total", "x")
        with pytest.raises(ValueError):
            counter.inc(-1)
        counter.restore(41)
        counter.inc()
        assert counter.value_int() == 42

    def test_labelled_family_value_is_sum_of_children(self):
        counter = Counter("repro_y_total", "y", labels=("k",))
        counter.labels(k="a").inc(3)
        counter.labels(k="b").inc(4)
        assert counter.value_int() == 7


class TestEscaping:
    def test_label_values_escape_backslash_quote_newline(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_g", "g", labels=("k",))
        gauge.labels(k='sp"am\\eggs\nham').set(1)
        assert (
            'repro_g{k="sp\\"am\\\\eggs\\nham"} 1' in registry.render()
        )

    def test_help_escapes_backslash_and_newline_only(self):
        registry = MetricsRegistry()
        registry.counter("repro_h_total", 'multi\nline "quoted" \\slash')
        text = registry.render()
        # Newlines and backslashes escaped; quotes stay literal in HELP.
        assert (
            "# HELP repro_h_total "
            'multi\\nline "quoted" \\\\slash\n'
        ) in text

    def test_escaped_output_stays_one_line_per_sample(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_nl", "a\nb", labels=("k",))
        gauge.labels(k="x\ny").set(1)
        for line in registry.render().splitlines():
            assert "\n" not in line  # splitlines already guarantees it
        assert len(registry.render().splitlines()) == 3


class TestHistogramGolden:
    def test_exact_exposition_with_custom_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "repro_lat_seconds", "Latency.", buckets=(0.1, 0.5, 1.0)
        )
        for value in (0.05, 0.05, 0.3, 0.7, 3.0):
            hist.observe(value)
        assert registry.render() == (
            "# HELP repro_lat_seconds Latency.\n"
            "# TYPE repro_lat_seconds histogram\n"
            'repro_lat_seconds_bucket{le="0.1"} 2\n'
            'repro_lat_seconds_bucket{le="0.5"} 3\n'
            'repro_lat_seconds_bucket{le="1"} 4\n'
            'repro_lat_seconds_bucket{le="+Inf"} 5\n'
            "repro_lat_seconds_sum 4.1\n"
            "repro_lat_seconds_count 5\n"
        )

    def test_buckets_are_cumulative_and_inf_always_present(self):
        hist = Histogram("repro_h2", "h", buckets=(1.0, 2.0))
        hist.observe(5.0)  # lands only in +Inf
        lines = "\n".join(hist.render())
        assert 'repro_h2_bucket{le="1"} 0' in lines
        assert 'repro_h2_bucket{le="2"} 0' in lines
        assert 'repro_h2_bucket{le="+Inf"} 1' in lines
        assert "repro_h2_count 1" in lines

    def test_observation_on_bucket_boundary_counts_le(self):
        # le is <=: an observation exactly at a bound belongs in it.
        hist = Histogram("repro_h3", "h", buckets=(1.0,))
        hist.observe(1.0)
        assert 'repro_h3_bucket{le="1"} 1' in "\n".join(hist.render())

    def test_explicit_inf_bound_is_collapsed(self):
        hist = Histogram("repro_h4", "h", buckets=(1.0, math.inf))
        hist.observe(0.5)
        rendered = "\n".join(hist.render())
        assert rendered.count('le="+Inf"') == 1

    def test_observe_many_matches_loop_of_observe(self):
        values = [0.01 * i for i in range(200)] + [5.0, -1.0, 0.1]
        bulk = Histogram("repro_bulk", "b", buckets=DEFAULT_BUCKETS)
        loop = Histogram("repro_loop", "l", buckets=DEFAULT_BUCKETS)
        bulk.observe_many(values)
        for v in values:
            loop.observe(v)
        bulk_lines = [
            line.split(" ")[-1] for line in bulk.render()[2:]
        ]
        loop_lines = [
            line.split(" ")[-1] for line in loop.render()[2:]
        ]
        assert bulk_lines == loop_lines

    def test_labelled_histogram_label_ordering(self):
        hist = Histogram(
            "repro_hl_seconds", "h", labels=("campaign",), buckets=(1.0,)
        )
        hist.labels(campaign="abc").observe(0.5)
        lines = hist.render()
        # Declared label first, le last — fixed order within the braces.
        assert (
            'repro_hl_seconds_bucket{campaign="abc",le="1"} 1' in lines
        )
        assert 'repro_hl_seconds_sum{campaign="abc"} 0.5' in lines
        assert 'repro_hl_seconds_count{campaign="abc"} 1' in lines

    def test_rejects_unsorted_or_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram("repro_bad", "b", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("repro_bad", "b", buckets=())
        with pytest.raises(ValueError):
            Histogram("repro_bad", "b", buckets=(math.inf,))


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("repro_depth", "d")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4.0

    def test_callback_gauge_is_live(self):
        state = {"depth": 1}
        gauge = Gauge("repro_live", "d")
        gauge.set_function(lambda: state["depth"])
        assert gauge.value == 1.0
        state["depth"] = 7
        assert "repro_live 7" in "\n".join(gauge.render())


class TestRegistry:
    def test_registration_is_idempotent_when_schema_agrees(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_same_total", "same", labels=("k",))
        b = registry.counter("repro_same_total", "same", labels=("k",))
        assert a is b

    def test_registration_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("repro_conflict", "one")
        with pytest.raises(ValueError):
            registry.gauge("repro_conflict", "one")  # type differs
        with pytest.raises(ValueError):
            registry.counter("repro_conflict", "two")  # help differs
        with pytest.raises(ValueError):
            registry.counter("repro_conflict", "one", labels=("k",))

    def test_families_render_in_registration_order(self):
        registry = MetricsRegistry()
        registry.counter("repro_z_total", "z")
        registry.counter("repro_a_total", "a")
        text = registry.render()
        assert text.index("repro_z_total") < text.index("repro_a_total")

    def test_sample_reads_one_child(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_s_total", "s", labels=("k",))
        counter.labels(k="x").inc(3)
        assert registry.sample("repro_s_total", {"k": "x"}) == 3.0
        assert registry.sample("repro_s_total", {"k": "missing"}) is None
        assert registry.sample("repro_absent") is None

    def test_render_is_deterministic(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_d_seconds", "d", labels=("e",))
        hist.labels(e="/b").observe(0.2)
        hist.labels(e="/a").observe(0.1)
        assert registry.render() == registry.render()

    def test_empty_registry_renders_empty_string(self):
        assert MetricsRegistry().render() == ""

    def test_content_type_is_exposition_v0_0_4(self):
        assert CONTENT_TYPE_LATEST == (
            "text/plain; version=0.0.4; charset=utf-8"
        )


class TestNullRegistry:
    def test_disabled_registry_hands_out_noops(self):
        registry = null_registry()
        counter = registry.counter("repro_n_total", "n")
        gauge = registry.gauge("repro_ng", "n", labels=("k",))
        hist = registry.histogram("repro_nh", "n")
        counter.inc(5)
        gauge.labels(k="x").set(3)
        hist.observe(1.0)
        hist.observe_many([1.0, 2.0])
        with hist.time():
            pass
        assert counter.value == 0.0
        assert counter.value_int() == 0
        assert hist.count == 0
        assert registry.render() == ""

    def test_null_instruments_never_validate_names(self):
        # Disabled registries skip registration entirely — even a name
        # that would be rejected live is absorbed silently.
        null_registry().counter("would-be-invalid", "x").inc()


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_updates(self):
        counter = Counter("repro_t_total", "t")
        hist = Histogram("repro_t_seconds", "t", buckets=(0.5,))

        def work():
            for _ in range(1000):
                counter.inc()
                hist.observe(0.1)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value_int() == 8000
        assert hist.count == 8000
