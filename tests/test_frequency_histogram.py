"""Tests for LDP histogram / distribution estimation."""

import numpy as np
import pytest

from repro.data.synthetic import power_law_matrix, truncated_gaussian_matrix
from repro.frequency.histogram import (
    HistogramEstimate,
    LDPHistogram,
    true_histogram,
)


class TestBucketize:
    def test_endpoints(self):
        hist = LDPHistogram(1.0, bins=4)
        idx = hist.bucketize([-1.0, -0.51, 0.0, 0.49, 1.0])
        assert idx.tolist() == [0, 0, 2, 2, 3]

    def test_all_bins_reachable(self, rng):
        hist = LDPHistogram(1.0, bins=8)
        idx = hist.bucketize(rng.uniform(-1, 1, 10_000))
        assert set(idx.tolist()) == set(range(8))

    def test_out_of_domain_rejected(self):
        with pytest.raises(ValueError):
            LDPHistogram(1.0).bucketize([1.5])

    def test_bad_bins(self):
        with pytest.raises(ValueError):
            LDPHistogram(1.0, bins=1)


class TestEstimation:
    def test_histogram_is_probability_vector(self, rng):
        hist = LDPHistogram(1.0, bins=8)
        est = hist.collect(rng.uniform(-1, 1, 20_000), rng)
        assert est.histogram.sum() == pytest.approx(1.0)
        assert np.all(est.histogram >= 0.0)

    def test_uniform_data_recovered(self, rng):
        hist = LDPHistogram(2.0, bins=8)
        est = hist.collect(rng.uniform(-1, 1, 60_000), rng)
        assert np.all(np.abs(est.histogram - 1.0 / 8.0) < 0.03)

    def test_skewed_data_recovered(self, rng):
        values = power_law_matrix(60_000, 1, rng=rng).ravel()
        hist = LDPHistogram(2.0, bins=8)
        est = hist.collect(values, rng)
        truth = true_histogram(values, bins=8)
        assert est.total_variation(truth) < 0.05
        # The dominant (first) bucket is identified.
        assert np.argmax(est.histogram) == np.argmax(truth)

    @pytest.mark.parametrize("oracle", ["grr", "sue", "oue", "olh"])
    def test_any_oracle(self, oracle, rng):
        hist = LDPHistogram(2.0, bins=6, oracle=oracle)
        est = hist.collect(rng.uniform(-1, 1, 30_000), rng)
        assert est.total_variation(np.full(6, 1 / 6)) < 0.1

    def test_accuracy_improves_with_epsilon(self, rng):
        values = truncated_gaussian_matrix(40_000, 1, 0.0, rng=rng).ravel()
        truth = true_histogram(values, bins=8)
        tv = {}
        for eps in (0.25, 4.0):
            est = LDPHistogram(eps, bins=8).collect(values, rng)
            tv[eps] = est.total_variation(truth)
        assert tv[4.0] < tv[0.25]

    def test_projection_handles_all_noise(self):
        est = HistogramEstimate(
            histogram=LDPHistogram._project(np.array([-0.1, -0.2, -0.3])),
            raw=np.array([-0.1, -0.2, -0.3]),
            edges=np.linspace(-1, 1, 4),
        )
        assert np.allclose(est.histogram, 1.0 / 3.0)


class TestQueries:
    def _uniform_estimate(self, bins=4):
        return HistogramEstimate(
            histogram=np.full(bins, 1.0 / bins),
            raw=np.full(bins, 1.0 / bins),
            edges=np.linspace(-1, 1, bins + 1),
        )

    def test_cdf_endpoints(self):
        est = self._uniform_estimate()
        assert est.cdf(-1.0) == pytest.approx(0.0)
        assert est.cdf(1.0) == pytest.approx(1.0)

    def test_cdf_midpoint(self):
        est = self._uniform_estimate()
        assert est.cdf(0.0) == pytest.approx(0.5)

    def test_quantile_inverts_cdf(self):
        est = self._uniform_estimate()
        for q in (0.1, 0.25, 0.5, 0.9):
            assert est.cdf(est.quantile(q)) == pytest.approx(q, abs=1e-9)

    def test_quantile_bad_q(self):
        with pytest.raises(ValueError):
            self._uniform_estimate().quantile(1.5)

    def test_mean_of_uniform_is_zero(self):
        assert self._uniform_estimate().mean() == pytest.approx(0.0)

    def test_mean_cross_checks_pm(self, rng):
        """Distribution-based mean vs the paper's direct mean estimation:
        both should land near the truth (histogram adds discretization
        bias of at most one bin width)."""
        from repro.core import PiecewiseMechanism

        values = truncated_gaussian_matrix(60_000, 1, 0.4, rng=rng).ravel()
        hist_mean = LDPHistogram(2.0, bins=16).collect(values, rng).mean()
        pm = PiecewiseMechanism(2.0)
        direct_mean = pm.estimate_mean(pm.privatize(values, rng))
        assert abs(hist_mean - values.mean()) < 0.1
        assert abs(direct_mean - values.mean()) < 0.05

    def test_total_variation_shape_mismatch(self):
        est = self._uniform_estimate()
        with pytest.raises(ValueError):
            est.total_variation(np.ones(7))

    def test_true_histogram_empty(self):
        with pytest.raises(ValueError):
            true_histogram([], bins=4)
